"""Tests for the high-throughput execution core.

Covers the incremental scheduler ready-set, micro-batch ingestion, the
hash-indexed JIT probe paths, feedback-aware scheduling, the round-robin
fairness fix, symmetric feedback statistics, and the regression for the
divert-before-resume-probe result loss.
"""

from __future__ import annotations

import math

import pytest

from repro.context import ExecutionContext
from repro.core.jit_join import JITJoinOperator
from repro.engine import ExecutionMode, ReadyStrategy, run_workload
from repro.engine.engine import ExecutionEngine
from repro.engine.results import result_multiset
from repro.operators.queues import InterOperatorQueue
from repro.operators.state import OperatorState
from repro.plans.builder import (
    PLAN_LEFT_DEEP,
    STRATEGY_JIT,
    STRATEGY_REF,
    build_xjoin_plan,
)
from repro.plans.query import ContinuousQuery
from repro.scheduler import JITAwareScheduler, ReadyInput, RoundRobinScheduler, build_scheduler
from repro.streams.generators import generate_clique_workload
from repro.streams.sources import StreamEvent
from repro.streams.time import Window
from repro.streams.tuples import AtomicTuple

ALL_POLICIES = ("fifo", "round_robin", "priority", "jit_aware")


def _suspension_workload():
    """A 4-source clique workload (3-join left-deep plan) with live JIT traffic."""
    return generate_clique_workload(
        n_sources=4, rate=0.5, window_seconds=20, dmax=2, duration=60, seed=0
    )


def _jit_plan(query, **kwargs):
    return build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_JIT, **kwargs)


def _reference_run(workload):
    query = ContinuousQuery.from_workload(workload)
    events = workload.events()
    report = run_workload(
        build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_REF),
        events,
        workload.window.length,
    )
    return query, events, result_multiset(report.results.results)


# ------------------------------------------------------------------- bugfix regression


class TestDivertResumeRegression:
    """A diverted arrival must still trigger resumptions for the MNSs it matches.

    Minimal failing sequence (found by hypothesis, reduced by delta
    debugging): ``C#2`` arrives at the middle join while (i) its own port is
    under an Ø suspension, so the arrival is parked, and (ii) the opposite
    MNS buffer holds ``<A: A.x2=1>``, for which ``C#2`` is the missing
    partner.  Diverting before probing the MNS buffer strands the suspended
    ``A`` tuples upstream forever and the result ``a2·b2·c2·d1`` is lost.
    """

    RAW_EVENTS = (
        ("A", 3.1769, {"x1": 2, "x2": 1, "x3": 1}),
        ("C", 5.8629, {"x2": 2, "x4": 1, "x6": 2}),
        ("B", 7.9334, {"x1": 2, "x4": 2, "x5": 2}),
        ("A", 7.9645, {"x1": 2, "x2": 1, "x3": 1}),
        ("A", 8.7172, {"x1": 2, "x2": 2, "x3": 1}),
        ("B", 8.8028, {"x1": 2, "x4": 1, "x5": 2}),
        ("C", 9.3260, {"x2": 1, "x4": 2, "x6": 2}),
        ("D", 9.3327, {"x3": 1, "x5": 2, "x6": 2}),
    )

    def _events(self):
        events = []
        seqs: dict = {}
        for source, ts, attrs in self.RAW_EVENTS:
            seqs[source] = seqs.get(source, 0) + 1
            events.append(
                StreamEvent(
                    ts=ts, source=source, tuple=AtomicTuple(source, ts, attrs, seq=seqs[source])
                )
            )
        return events

    def test_minimal_sequence_matches_ref(self):
        workload = _suspension_workload()
        query = ContinuousQuery.from_workload(workload)
        events = self._events()
        ref = run_workload(
            build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_REF),
            events,
            workload.window.length,
        )
        jit = run_workload(_jit_plan(query), events, workload.window.length)
        assert result_multiset(jit.results.results) == result_multiset(ref.results.results)
        assert ref.result_count == 3

    def test_original_falsifying_workload_matches_ref(self):
        workload = _suspension_workload()
        query, events, ref = _reference_run(workload)
        jit = run_workload(_jit_plan(query), events, workload.window.length)
        assert result_multiset(jit.results.results) == ref


class TestReplayedTupleResumesRegression:
    """A replayed suspended tuple must act as a resumption trigger.

    Second divergence found by hypothesis, reduced by delta debugging: Op3
    suspends ``<C: C.x6=5>`` at Op2 (parking ``C#1``), after which an AB
    partial probing Op2's right state misses ``C#1`` and suspends
    ``<A: A.x2=6>`` at Op1.  When ``C#1`` is later resumed, its replay
    re-enters the state — making it the missing partner of ``<A: A.x2=6>``
    — but a replay that skips the MNS-buffer probe never resumes the
    suspended ``A``, and the result ``a1·b3·c1·d2`` is lost.
    """

    RAW_EVENTS = (
        ("A", 1.042680048453, {"x1": 5, "x2": 6, "x3": 2}),
        ("C", 1.343772337151322, {"x2": 6, "x4": 4, "x6": 5}),
        ("C", 2.1224435595944255, {"x2": 4, "x4": 5, "x6": 4}),
        ("B", 2.2112908905890296, {"x1": 5, "x4": 3, "x5": 4}),
        ("A", 2.575528409273283, {"x1": 5, "x2": 1, "x3": 5}),
        ("D", 2.708958737582136, {"x3": 5, "x5": 3, "x6": 1}),
        ("C", 2.778704628033483, {"x2": 1, "x4": 3, "x6": 5}),
        ("B", 3.762794256505115, {"x1": 5, "x4": 3, "x5": 4}),
        ("B", 4.832813725028561, {"x1": 5, "x4": 4, "x5": 4}),
        ("D", 46.45106987117514, {"x3": 2, "x5": 4, "x6": 5}),
    )

    def test_minimal_sequence_matches_ref(self):
        from repro.core.config import DetectionMode, JITConfig

        workload = generate_clique_workload(
            n_sources=4, rate=2.0, window_seconds=80, dmax=6, duration=100, seed=56
        )
        query = ContinuousQuery.from_workload(workload)
        events = []
        seqs: dict = {}
        for source, ts, attrs in self.RAW_EVENTS:
            seqs[source] = seqs.get(source, 0) + 1
            events.append(
                StreamEvent(
                    ts=ts, source=source, tuple=AtomicTuple(source, ts, attrs, seq=seqs[source])
                )
            )
        config = JITConfig(
            detection_mode=DetectionMode.LATTICE,
            divert_similar_arrivals=False,
            propagate_feedback=False,
        )
        ref = run_workload(
            build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_REF),
            events,
            workload.window.length,
        )
        jit = run_workload(
            _jit_plan(query, jit_config=config), events, workload.window.length
        )
        assert result_multiset(jit.results.results) == result_multiset(ref.results.results)
        assert ref.result_count == 1


# ------------------------------------------------------------------- queued equivalence


class TestQueuedEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("ready_strategy", ReadyStrategy.ALL)
    def test_all_policies_match_synchronous_on_jit_plan(self, policy, ready_strategy):
        workload = _suspension_workload()
        query, events, ref = _reference_run(workload)
        plan = _jit_plan(query)
        report = run_workload(
            plan,
            events,
            workload.window.length,
            mode=ExecutionMode.QUEUED,
            scheduler=build_scheduler(policy),
            ready_strategy=ready_strategy,
        )
        assert result_multiset(report.results.results) == ref
        # The workload must actually exercise the feedback mechanism for the
        # equivalence to mean anything.
        stats = [op.stats for op in plan.join_operators if isinstance(op, JITJoinOperator)]
        assert sum(s["suspensions_sent"] for s in stats) > 0
        assert sum(s["resumptions_sent"] for s in stats) > 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_incremental_ready_set_reproduces_rescan_schedule(self, policy):
        # Not just the same result multiset: the identical schedule, hence
        # identical modelled costs, for every policy.
        workload = _suspension_workload()
        query, events, _ref = _reference_run(workload)
        reports = {}
        for ready_strategy in ReadyStrategy.ALL:
            report = run_workload(
                _jit_plan(query),
                events,
                workload.window.length,
                mode=ExecutionMode.QUEUED,
                scheduler=build_scheduler(policy),
                ready_strategy=ready_strategy,
            )
            reports[ready_strategy] = report
        incremental = reports[ReadyStrategy.INCREMENTAL]
        rescan = reports[ReadyStrategy.RESCAN]
        assert [r for r in incremental.results.results] == [r for r in rescan.results.results]
        assert incremental.metrics.cpu_units == rescan.metrics.cpu_units


class TestMicroBatching:
    def _tied_events(self):
        """Two equi-joined sources with several same-timestamp arrivals."""
        events = []
        seq = 0
        for step in range(40):
            ts = float(step)
            for source in ("A", "B"):
                for k in range(2):
                    seq += 1
                    events.append(
                        StreamEvent(
                            ts=ts,
                            source=source,
                            tuple=AtomicTuple(source, ts, {"x1": (seq + k) % 3}, seq=seq),
                        )
                    )
        return events

    def _two_source_query(self):
        workload = generate_clique_workload(
            n_sources=2, rate=1.0, window_seconds=10, dmax=3, duration=40, seed=1
        )
        return ContinuousQuery.from_workload(workload)

    @pytest.mark.parametrize("mode", ExecutionMode.ALL)
    @pytest.mark.parametrize("strategy", (STRATEGY_REF, STRATEGY_JIT))
    def test_run_batch_matches_per_event(self, mode, strategy):
        query = self._two_source_query()
        events = self._tied_events()
        per_event = run_workload(
            build_xjoin_plan(query, strategy=strategy), events, 10.0, mode=mode
        )
        batched = run_workload(
            build_xjoin_plan(query, strategy=strategy), events, 10.0, mode=mode, batch=True
        )
        assert per_event.result_count > 0
        assert result_multiset(batched.results.results) == result_multiset(
            per_event.results.results
        )
        assert batched.events_processed == per_event.events_processed

    def test_process_batch_rejects_mixed_timestamps(self):
        query = self._two_source_query()
        plan = build_xjoin_plan(query)
        engine = ExecutionEngine(plan, ExecutionContext(window=Window(10.0)))
        events = self._tied_events()
        with pytest.raises(ValueError):
            engine.process_batch([events[0], events[-1]])


# ------------------------------------------------------------------- hash-indexed probes


class TestIndexedJITProbes:
    @pytest.mark.parametrize("mode", ExecutionMode.ALL)
    def test_indexed_jit_join_matches_ref(self, mode):
        workload = _suspension_workload()
        query, events, ref = _reference_run(workload)
        report = run_workload(
            _jit_plan(query, use_hash_index=True),
            events,
            workload.window.length,
            mode=mode,
        )
        assert result_multiset(report.results.results) == ref

    def test_indexed_jit_join_matches_ref_with_suspension_churn(self):
        # Higher rate and a selective top join: many suspensions/resumptions
        # exercise _join_resumed's indexed path with non-trivial watermarks.
        workload = generate_clique_workload(
            n_sources=3,
            rate=1.0,
            window_seconds=36,
            dmax=40,
            duration=110,
            seed=9,
            value_range_overrides={"C": 5000},
        )
        query, events, ref = _reference_run(workload)
        plan = _jit_plan(query, use_hash_index=True)
        report = run_workload(plan, events, workload.window.length)
        assert result_multiset(report.results.results) == ref
        stats = [op.stats for op in plan.join_operators if isinstance(op, JITJoinOperator)]
        assert sum(s["suspensions_sent"] for s in stats) > 0

    def test_detection_free_probe_uses_index(self):
        # On a 2-source plan both ports are source-fed, so detection is off
        # and every probe must go through the hash index: no PROBE_STEP cost
        # beyond key-matching entries, i.e. far fewer than the nested loop.
        workload = generate_clique_workload(
            n_sources=2, rate=2.0, window_seconds=30, dmax=50, duration=100, seed=3
        )
        query, events, ref = _reference_run(workload)
        nested = run_workload(_jit_plan(query), events, workload.window.length)
        indexed = run_workload(
            _jit_plan(query, use_hash_index=True), events, workload.window.length
        )
        assert result_multiset(indexed.results.results) == ref
        nested_probes = nested.metrics.counters.get("probe_step", 0)
        indexed_probes = indexed.metrics.counters.get("probe_step", 0)
        assert indexed_probes < nested_probes / 5


# ------------------------------------------------------------------- schedulers


class TestRoundRobinFairness:
    def _inputs(self, context, n):
        class _Op:
            def __init__(self, name):
                self.name = name

        inputs = []
        for i in range(n):
            queue = InterOperatorQueue(f"q{i}", context)
            inputs.append(ReadyInput(operator=_Op(f"op{i}"), port="left", queue=queue, order=i))
        return inputs

    def test_no_starvation_under_alternating_ready_lengths(self, context):
        # The old cursor-modulo implementation picked index 0 of [a, b]
        # whenever the cursor happened to be even — which an interleaved
        # singleton list guarantees — so b was never served.
        a, b, c = self._inputs(context, 3)
        scheduler = RoundRobinScheduler()
        served = []
        for _round in range(6):
            served.append([a, b][scheduler.select([a, b])].operator.name)
            served.append([c][scheduler.select([c])].operator.name)
        assert "op1" in served, f"input b starved: {served}"
        # Fair rotation: a and b are served equally often.
        assert served.count("op0") == served.count("op1")

    def test_cycles_through_stable_identities(self, context):
        a, b = self._inputs(context, 2)
        scheduler = RoundRobinScheduler()
        picks = [scheduler.select([a, b]) for _ in range(4)]
        assert picks == [0, 1, 0, 1]


class TestFeedbackAwareScheduling:
    def test_engine_notifies_scheduler_of_feedback(self):
        workload = _suspension_workload()
        query, events, ref = _reference_run(workload)
        plan = _jit_plan(query)
        context = ExecutionContext(window=Window(workload.window.length))
        scheduler = JITAwareScheduler()
        engine = ExecutionEngine(
            plan, context, mode=ExecutionMode.QUEUED, scheduler=scheduler
        )
        notifications = []
        context.add_feedback_listener(
            lambda producer, consumer, kind: notifications.append(kind)
        )
        report = engine.run(events)
        assert result_multiset(report.results.results) == ref
        assert "suspend" in notifications and "resume" in notifications

    def test_boost_prefers_resumed_producer(self, context):
        class _Op:
            def __init__(self, name):
                self.name = name

        producer, consumer = _Op("producer"), _Op("consumer")
        q1, q2 = (InterOperatorQueue(f"q{i}", context) for i in (1, 2))
        older = AtomicTuple("A", 1.0, {"x": 1})
        newer = AtomicTuple("B", 2.0, {"x": 1})
        q1.push(newer)
        q2.push(older)
        ready = (
            ReadyInput(operator=producer, port="left", queue=q1, order=0),
            ReadyInput(operator=consumer, port="left", queue=q2, order=1),
        )
        scheduler = JITAwareScheduler(boost_steps=2)
        assert scheduler.select(ready) == 1  # FIFO fallback: oldest head wins
        scheduler.notify_feedback(producer, consumer, "resume")
        assert scheduler.select(ready) == 0  # boosted producer wins
        assert scheduler.select(ready) == 0  # still boosted (2 steps)
        assert scheduler.select(ready) == 1  # boost expired


# ------------------------------------------------------------------- feedback statistics


class TestFeedbackStats:
    def test_sent_equals_received_per_signature(self):
        workload = _suspension_workload()
        query, events, _ref = _reference_run(workload)
        plan = _jit_plan(query)
        run_workload(plan, events, workload.window.length)
        jit_ops = [op for op in plan.join_operators if isinstance(op, JITJoinOperator)]
        sent_susp = sum(op.stats["suspensions_sent"] for op in jit_ops)
        recv_susp = sum(op.stats["suspensions_received"] for op in jit_ops)
        sent_res = sum(op.stats["resumptions_sent"] for op in jit_ops)
        recv_res = sum(op.stats["resumptions_received"] for op in jit_ops)
        assert sent_susp > 0 and sent_res > 0
        assert sent_susp == recv_susp
        assert sent_res == recv_res


# ------------------------------------------------------------------- operator state


class TestHasLive:
    def test_retained_entries_are_not_live(self, context):
        state = OperatorState("S", context)
        state.insert(AtomicTuple("A", 1.0, {"x": 1}), now=1.0)
        state.insert(AtomicTuple("A", 2.0, {"x": 2}), now=2.0)
        # A purge floor retains both entries past their expiry at t=100.
        state.purge_floor = 0.5
        state.purge(horizon=100.0)
        assert not state.is_empty
        assert state.has_live(None)
        assert state.has_live(2.0)
        assert not state.has_live(2.5), "every entry is below the live horizon"

    def test_has_live_without_horizon_matches_emptiness(self, context):
        state = OperatorState("S", context)
        assert not state.has_live(None)
        entry = state.insert(AtomicTuple("A", 1.0, {"x": 1}), now=1.0)
        assert state.has_live(None)
        state.remove_entry(entry)
        assert not state.has_live(None)
