"""Unit tests for the JIT core: signatures, feedback, lattice, detection,
MNS buffer, blacklist and production-control helpers."""

from __future__ import annotations

import pytest

from repro.context import ExecutionContext
from repro.core.blacklist import Blacklist, SuspendedTuple
from repro.core.cns_lattice import CNSLattice
from repro.core.config import DetectionMode, JITConfig, RetentionPolicy
from repro.core.feedback import Feedback, FeedbackKind
from repro.core.mns_buffer import MNSBuffer
from repro.core.mns_detection import (
    BloomMNSDetector,
    EmptyStateDetector,
    LatticeMNSDetector,
    build_detector,
)
from repro.core.production_control import (
    SIDE_BOTH,
    SIDE_EMPTY,
    SIDE_LEFT,
    SIDE_RIGHT,
    classify_signature,
    split_signature,
)
from repro.core.signature import MNSSignature
from repro.operators.predicates import AttributeRef, EquiJoinCondition
from repro.streams.tuples import AtomicTuple, join_tuples

from helpers import make_tuple


# --------------------------------------------------------------------------- signatures


class TestMNSSignature:
    def test_from_components(self):
        ab = join_tuples(make_tuple("A", 1.0, x=3, y=9), make_tuple("B", 2.0, z=4))
        sig = MNSSignature.from_components(ab, ("A",), [("A", "y"), ("B", "z")])
        assert sig.sources == ("A",)
        assert sig.items == (("A", "y", 9),)
        assert sig.ts == ab.ts

    def test_value_based_equality_ignores_ts(self):
        t1 = make_tuple("A", 1.0, y=9)
        t2 = make_tuple("A", 5.0, seq=3, y=9)
        s1 = MNSSignature.from_components(t1, ("A",), [("A", "y")])
        s2 = MNSSignature.from_components(t2, ("A",), [("A", "y")])
        assert s1 == s2 and hash(s1) == hash(s2)
        assert s1.ts != s2.ts

    def test_matches_super_by_value(self):
        sig = MNSSignature.from_components(make_tuple("A", 1.0, y=9), ("A",), [("A", "y")])
        similar = make_tuple("A", 7.0, seq=5, y=9)
        different = make_tuple("A", 7.0, seq=6, y=8)
        ab = join_tuples(make_tuple("A", 1.0, y=9), make_tuple("B", 2.0, z=1))
        assert sig.matches_super(similar)
        assert not sig.matches_super(different)
        assert sig.matches_super(ab)

    def test_empty_signature_matches_everything(self):
        empty = MNSSignature.empty(ts=3.0)
        assert empty.is_empty
        assert empty.matches_super(make_tuple("Z", 0.0, q=1))

    def test_restrict(self):
        ac = join_tuples(make_tuple("A", 1.0, x=1), make_tuple("C", 2.0, z=3))
        sig = MNSSignature.from_components(ac, ("A", "C"), [("A", "x"), ("C", "z")])
        left = sig.restrict({"A"})
        assert left.sources == ("A",)
        assert left.items == (("A", "x", 1),)

    def test_validation(self):
        with pytest.raises(ValueError):
            MNSSignature(sources=("B", "A"), items=())
        with pytest.raises(ValueError):
            MNSSignature(sources=("A",), items=(("B", "x", 1),))


# --------------------------------------------------------------------------- feedback


class TestFeedback:
    def _sig(self):
        return MNSSignature.from_components(make_tuple("A", 1.0, y=9), ("A",), [("A", "y")])

    def test_constructors(self):
        sig = self._sig()
        assert Feedback.suspend([sig]).kind == FeedbackKind.SUSPEND
        assert Feedback.resume([sig]).is_resumption
        assert Feedback.mark([sig]).is_suspension
        assert Feedback.unmark([sig]).kind == FeedbackKind.UNMARK

    def test_validation(self):
        sig = self._sig()
        with pytest.raises(ValueError):
            Feedback("bogus", (sig,))
        with pytest.raises(ValueError):
            Feedback.suspend([])
        with pytest.raises(ValueError):
            Feedback.resume([sig]).__class__(FeedbackKind.RESUME, (sig,), permanent=True)

    def test_split_and_single(self):
        a = self._sig()
        b = MNSSignature.from_components(make_tuple("B", 1.0, z=2), ("B",), [("B", "z")])
        multi = Feedback.suspend([a, b])
        parts = multi.split()
        assert len(parts) == 2
        assert parts[0].single() == a
        with pytest.raises(ValueError):
            multi.single()


# --------------------------------------------------------------------------- CNS lattice


class TestCNSLattice:
    def test_structure_matches_figure7(self):
        lattice = CNSLattice(["a", "b", "c", "d"])
        # 15 non-empty subsets of 4 components (Figure 7 has 16 including Ø).
        assert lattice.size == 15
        assert len(lattice.level_nodes(1)) == 4
        assert len(lattice.level_nodes(2)) == 6
        node = lattice.node({"a", "b"})
        assert {tuple(sorted(c.sources))[0] for c in node.children} == {"a", "b"}

    def test_max_level_restriction(self):
        lattice = CNSLattice(["a", "b", "c"], max_level=1)
        assert lattice.size == 3
        assert lattice.level_nodes(2) == []

    def test_identify_mns_semantics(self):
        # Components a, b; opposite tuples match a only -> b is the single MNS.
        lattice = CNSLattice(["a", "b"])
        lattice.reset()
        lattice.observe({"a": True, "b": False})
        assert lattice.surviving_mns() == [frozenset({"b"})]

    def test_pair_mns_when_no_single_tuple_matches_both(self):
        # t'1 matches a only, t'2 matches b only -> ab is the minimal MNS.
        lattice = CNSLattice(["a", "b"])
        lattice.reset()
        lattice.observe({"a": True, "b": False})
        lattice.observe({"a": False, "b": True})
        assert lattice.surviving_mns() == [frozenset({"a", "b"})]

    def test_dead_nodes_stay_dead(self):
        # Paper Section IV-A: once a node dies it stays dead even if a later
        # tuple does not match it.
        lattice = CNSLattice(["a", "b"])
        lattice.reset()
        lattice.observe({"a": True, "b": True})
        lattice.observe({"a": False, "b": False})
        assert lattice.surviving_mns() == []

    def test_minimality_pruning(self):
        # If a is an MNS, ab must not be reported (not minimal).
        lattice = CNSLattice(["a", "b"])
        lattice.reset()
        lattice.observe({"a": False, "b": True})
        survivors = lattice.surviving_mns()
        assert frozenset({"a"}) in survivors
        assert frozenset({"a", "b"}) not in survivors

    def test_validation(self):
        with pytest.raises(ValueError):
            CNSLattice([])
        with pytest.raises(ValueError):
            CNSLattice(["a"], max_level=0)
        with pytest.raises(KeyError):
            CNSLattice(["a", "b"]).node({"z"})


# --------------------------------------------------------------------------- detectors


def _abc_conditions():
    """Conditions of the top join of Figure 1: A.y = C.y and B.z = C.z."""
    return {
        "A": (EquiJoinCondition(AttributeRef("A", "y"), AttributeRef("C", "y")),),
        "B": (EquiJoinCondition(AttributeRef("B", "z"), AttributeRef("C", "z")),),
    }


class TestDetectors:
    def test_lattice_detector_reports_unmatched_component(self, context):
        detector = LatticeMNSDetector(
            ["A", "B"], {"A": [("A", "y")], "B": [("B", "z")]}, context, max_arity=1
        )
        ab = join_tuples(make_tuple("A", 1.0, y=9), make_tuple("B", 1.0, z=5))
        detector.start(ab)
        detector.observe(ab, {"A": False, "B": True})
        signatures = detector.finish(ab)
        assert len(signatures) == 1
        assert signatures[0].sources == ("A",)
        assert signatures[0].items == (("A", "y", 9),)

    def test_bloom_detector_no_false_mns(self, context):
        detector = BloomMNSDetector(
            ["A", "B"],
            {"A": [("A", "y")], "B": [("B", "z")]},
            context,
            _abc_conditions(),
            num_bits=512,
        )
        c = make_tuple("C", 0.5, y=9, z=5)
        detector.note_opposite_insert(c)
        ab_match = join_tuples(make_tuple("A", 1.0, y=9), make_tuple("B", 1.0, z=5))
        assert detector.finish(ab_match) == []
        ab_miss = join_tuples(make_tuple("A", 1.0, y=1), make_tuple("B", 1.0, z=5))
        sigs = detector.finish(ab_miss)
        assert [s.sources for s in sigs] == [("A",)]

    def test_bloom_detector_tracks_removals(self, context):
        detector = BloomMNSDetector(
            ["A"], {"A": [("A", "y")]}, context,
            {"A": (_abc_conditions()["A"])}, num_bits=512,
        )
        c = make_tuple("C", 0.5, y=9, z=5)
        detector.note_opposite_insert(c)
        detector.note_opposite_remove(c)
        ab = join_tuples(make_tuple("A", 1.0, y=9), make_tuple("B", 1.0, z=5))
        assert len(detector.finish(ab)) == 1

    def test_empty_state_detector_reports_nothing(self, context):
        detector = EmptyStateDetector(["A"], {"A": [("A", "y")]}, context)
        ab = join_tuples(make_tuple("A", 1.0, y=9), make_tuple("B", 1.0, z=5))
        assert detector.finish(ab) == []

    def test_build_detector_modes(self, context):
        args = (["A"], {"A": [("A", "y")]}, {"A": _abc_conditions()["A"]}, context)
        assert isinstance(
            build_detector(JITConfig(), args[0], args[1], args[2], context), LatticeMNSDetector
        )
        assert isinstance(
            build_detector(JITConfig(detection_mode=DetectionMode.BLOOM), *args[:3], context),
            BloomMNSDetector,
        )
        assert isinstance(
            build_detector(JITConfig(detection_mode=DetectionMode.EMPTY_ONLY), *args[:3], context),
            EmptyStateDetector,
        )
        assert build_detector(JITConfig(detection_mode=DetectionMode.NONE), *args[:3], context) is None
        assert build_detector(JITConfig(), [], {}, {}, context) is None


# --------------------------------------------------------------------------- config


class TestJITConfig:
    def test_presets(self):
        assert JITConfig.doe().detection_mode == DetectionMode.EMPTY_ONLY
        assert JITConfig.doe().propagate_empty_suspension
        assert JITConfig.disabled().detection_mode == DetectionMode.NONE
        assert JITConfig.paper_default().retention_policy == RetentionPolicy.EXACT

    def test_validation(self):
        with pytest.raises(ValueError):
            JITConfig(detection_mode="nope")
        with pytest.raises(ValueError):
            JITConfig(retention_policy="sometimes")
        with pytest.raises(ValueError):
            JITConfig(max_mns_arity=0)
        with pytest.raises(ValueError):
            JITConfig(jit_structure_purge_interval=0)


# --------------------------------------------------------------------------- MNS buffer


def _y_condition():
    return (EquiJoinCondition(AttributeRef("A", "y"), AttributeRef("C", "y")),)


class TestMNSBuffer:
    def _buffer(self, context):
        return MNSBuffer("buf", context, side_sources={"A", "B"}, conditions=_y_condition())

    def _sig(self, y=9, ts=1.0):
        return MNSSignature.from_components(make_tuple("A", ts, y=y), ("A",), [("A", "y")])

    def test_add_and_match(self, context):
        buf = self._buffer(context)
        sig = self._sig(y=9)
        buf.add(sig, now=1.0)
        assert sig in buf and len(buf) == 1
        matching = buf.match(make_tuple("C", 2.0, y=9))
        assert [e.signature for e in matching] == [sig]
        assert buf.match(make_tuple("C", 2.0, y=7)) == []

    def test_add_is_idempotent(self, context):
        buf = self._buffer(context)
        buf.add(self._sig(), now=1.0)
        buf.add(self._sig(), now=5.0)
        assert len(buf) == 1

    def test_remove_releases_memory(self, context):
        buf = self._buffer(context)
        sig = self._sig()
        buf.add(sig, now=1.0)
        assert context.memory.by_category[MNSBuffer.MEMORY_CATEGORY] > 0
        buf.remove(sig)
        assert context.memory.by_category[MNSBuffer.MEMORY_CATEGORY] == 0
        assert buf.remove(sig) is None

    def test_empty_signature_matches_any_partner(self, context):
        buf = self._buffer(context)
        buf.add(MNSSignature.empty(ts=0.0), now=0.0)
        assert len(buf.match(make_tuple("C", 1.0, y=123))) == 1

    def test_purge_by_liveness(self, context):
        buf = self._buffer(context)
        s1, s2 = self._sig(y=1), self._sig(y=2)
        buf.add(s1, 0.0)
        buf.add(s2, 0.0)
        dead = buf.purge(lambda sig: sig == s1)
        assert [e.signature for e in dead] == [s2]
        assert len(buf) == 1

    def test_min_active_ts(self, context):
        buf = self._buffer(context)
        assert buf.min_active_ts() is None
        buf.add(self._sig(y=1, ts=5.0), 5.0)
        buf.add(self._sig(y=2, ts=2.0), 5.0)
        assert buf.min_active_ts() == 2.0

    def test_blocks_suspension_detects_possible_cycle(self, context):
        buf = self._buffer(context)
        buf.add(self._sig(y=9), now=0.0)  # partner requires C.y = 9
        # A new opposite-side suspension hiding C tuples with y=9 would hide
        # this MNS's partner -> blocked.
        assert buf.blocks_suspension({("C", "y"): 9}, {("A", "y"): 1})
        # One that hides only C.y=5 tuples cannot conflict -> allowed.
        assert not buf.blocks_suspension({("C", "y"): 5}, {("A", "y"): 1})
        # The Ø signature (no constraints) is always blocked by a non-empty buffer.
        assert buf.blocks_suspension({}, {})


# --------------------------------------------------------------------------- blacklist


class TestBlacklist:
    def _sig(self, y=9, ts=1.0):
        return MNSSignature.from_components(make_tuple("A", ts, y=y), ("A",), [("A", "y")])

    def test_add_and_match_arrival(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig(y=9)
        bl.add_suspended(sig, make_tuple("A", 1.0, y=9), joined_upto_seq=3, now=1.0)
        assert sig in bl and len(bl) == 1
        similar = make_tuple("A", 5.0, seq=7, y=9)
        entry = bl.match_arrival(similar)
        assert entry is not None and entry.signature == sig
        assert bl.match_arrival(make_tuple("A", 5.0, seq=8, y=1)) is None

    def test_permanent_entries_drop_tuples(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig()
        suspended = bl.add_suspended(sig, make_tuple("A", 1.0, y=9), 0, 1.0, permanent=True)
        assert suspended is None
        assert bl.entry(sig).permanent

    def test_pop_entry_releases_memory(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig()
        bl.add_suspended(sig, make_tuple("A", 1.0, y=9), 0, 1.0)
        assert context.memory.by_category[Blacklist.MEMORY_CATEGORY] > 0
        entry = bl.pop_entry(sig)
        assert entry is not None and len(entry.suspended) == 1
        assert context.memory.by_category[Blacklist.MEMORY_CATEGORY] == 0
        assert bl.pop_entry(sig) is None

    def test_min_live_ts(self, context):
        bl = Blacklist("bl", context)
        assert bl.min_live_ts() is None
        bl.add_suspended(self._sig(y=1, ts=10.0), make_tuple("A", 12.0, y=1), 0, 12.0)
        bl.add_suspended(self._sig(y=2, ts=4.0), make_tuple("A", 6.0, y=2), 0, 6.0)
        assert bl.min_live_ts() == 4.0

    def test_purge_drops_expired(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig(ts=0.0)
        bl.add_suspended(sig, make_tuple("A", 0.0, y=9), 0, 0.0)
        dropped = bl.purge(now=100.0, retention=50.0)
        assert dropped == 1
        assert sig not in bl

    def test_purge_keeps_propagated_entries(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig(ts=0.0)
        entry = bl.ensure_entry(sig, 0.0)
        entry.propagated_upstream = True
        bl.purge(now=100.0, retention=50.0)
        assert sig in bl

    def test_is_alive(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig(ts=0.0)
        bl.add_suspended(sig, make_tuple("A", 0.0, y=9), 0, 0.0)
        assert bl.is_alive(sig, now=30.0, retention=60.0)
        assert not bl.is_alive(sig, now=120.0, retention=60.0)
        assert not bl.is_alive(self._sig(y=5), now=0.0, retention=60.0)

    def test_empty_signature_diverts_everything(self, context):
        bl = Blacklist("bl", context)
        bl.ensure_entry(MNSSignature.empty(), now=0.0)
        assert bl.match_arrival(make_tuple("A", 1.0, y=42)) is not None

    def test_unmet_exceptions(self, context):
        bl = Blacklist("bl", context)
        sig = self._sig(y=9)
        # A suspended tuple that met opposite seqs <= 5 only.
        bl.add_suspended(sig, make_tuple("A", 1.0, y=9), joined_upto_seq=5, now=1.0, original_seq=2)
        assert bl.unmet_exceptions_for(3) == frozenset()
        assert bl.unmet_exceptions_for(9) == frozenset({2})

    def test_suspended_tuple_has_met(self):
        s = SuspendedTuple(
            tuple=make_tuple("A", 1.0, y=9),
            joined_upto_seq=5,
            suspended_at=1.0,
            met_seqs=frozenset({8}),
            unmet_seqs=frozenset({2}),
        )
        assert s.has_met(4)
        assert not s.has_met(2)
        assert s.has_met(8)
        assert not s.has_met(9)


# --------------------------------------------------------------------------- production control


class TestProductionControl:
    def _sig(self, sources, attrs, tup):
        return MNSSignature.from_components(tup, sources, attrs)

    def test_classify_type1_and_type2(self):
        ab = join_tuples(make_tuple("A", 1.0, x=1), make_tuple("B", 1.0, y=2))
        a_sig = self._sig(("A",), [("A", "x")], ab)
        assert classify_signature(a_sig, {"A", "B"}, {"C", "D"}) == SIDE_LEFT
        cd = join_tuples(make_tuple("C", 1.0, z=3), make_tuple("D", 1.0, w=4))
        d_sig = self._sig(("D",), [("D", "w")], cd)
        assert classify_signature(d_sig, {"A", "B"}, {"C", "D"}) == SIDE_RIGHT
        ac = join_tuples(make_tuple("A", 1.0, x=1), make_tuple("C", 1.0, z=3))
        ac_sig = self._sig(("A", "C"), [("A", "x"), ("C", "z")], ac)
        assert classify_signature(ac_sig, {"A", "B"}, {"C", "D"}) == SIDE_BOTH
        assert classify_signature(MNSSignature.empty(), {"A"}, {"B"}) == SIDE_EMPTY

    def test_classify_rejects_unknown_sources(self):
        sig = self._sig(("A",), [("A", "x")], make_tuple("A", 1.0, x=1))
        with pytest.raises(ValueError):
            classify_signature(sig, {"B"}, {"C"})

    def test_split_signature(self):
        ac = join_tuples(make_tuple("A", 1.0, x=1), make_tuple("C", 1.0, z=3))
        sig = self._sig(("A", "C"), [("A", "x"), ("C", "z")], ac)
        left, right = split_signature(sig, {"A", "B"}, {"C", "D"})
        assert left is not None and left.sources == ("A",)
        assert right is not None and right.sources == ("C",)
        only_left, none_right = split_signature(
            self._sig(("A",), [("A", "x")], make_tuple("A", 1.0, x=1)), {"A"}, {"C"}
        )
        assert only_left is not None and none_right is None
        assert split_signature(MNSSignature.empty(), {"A"}, {"B"}) == (None, None)
