"""Tests for the serving front-end (repro.serve): buffers, policies, servers.

Covers the acceptance contract of the serving layer:

* with a bounded buffer of N and 10N pushed events, ``block`` loses zero
  events while ``drop_oldest`` / ``fair_shed`` shed exactly the accounted
  number (``shed_total`` matches what the caller can count);
* the ``block``-policy server is result-bit-identical to the raw engine;
* the asyncio adapter applies genuine backpressure (the buffer never
  exceeds its bound) and accounts identically;
* the admission hook rejects before buffering and is fully accounted;
* regression: concurrent ``ShardedEngine.flush()`` calls dispatch a
  pending micro-batch exactly once.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.context import ExecutionContext
from repro.engine import ExecutionEngine, ExecutionMode, run_workload
from repro.multi import QueryRegistry, ShardedEngine, generate_multi_query_workload
from repro.plans.builder import STRATEGY_JIT, STRATEGY_REF
from repro.serve import (
    OFFER_ACCEPTED,
    OFFER_BLOCKED,
    AsyncStreamServer,
    BoundedIngestionBuffer,
    DepthLimitAdmission,
    OverloadPolicy,
    StreamServer,
    accept_all,
    get_metric_value,
    parse_exposition,
)
from repro.streams.sources import StreamEvent
from repro.streams.time import Window
from repro.streams.tuples import AtomicTuple

_SEQ = iter(range(1, 1_000_000))


def _event(source: str, ts: float) -> StreamEvent:
    seq = next(_SEQ)
    return StreamEvent(ts=ts, source=source, tuple=AtomicTuple(source, ts, {"v": seq}, seq=seq))


def _workload():
    return generate_multi_query_workload(
        n_queries=6, n_sources=4, rate=0.8, window_seconds=20, dmax=4, duration=90, seed=7
    )


def _registry(workload):
    registry = QueryRegistry()
    for index, query in enumerate(workload.queries()):
        registry.register(query, strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF)
    return registry


# ----------------------------------------------------------------- the buffer


class TestBoundedIngestionBuffer:
    def test_validates_capacity_and_policy(self):
        with pytest.raises(ValueError):
            BoundedIngestionBuffer(0)
        with pytest.raises(ValueError):
            BoundedIngestionBuffer(4, policy="nope")

    def test_fifo_order_preserved(self):
        buffer = BoundedIngestionBuffer(10)
        events = [_event("A", float(i)) for i in range(5)]
        for event in events:
            assert buffer.offer(event) == (OFFER_ACCEPTED, [])
        assert buffer.pop_batch(None) == events
        assert buffer.popped_total == 5

    def test_block_refuses_when_full_without_accounting_the_offer(self):
        buffer = BoundedIngestionBuffer(2, policy=OverloadPolicy.BLOCK)
        buffer.offer(_event("A", 1.0))
        buffer.offer(_event("A", 2.0))
        outcome, shed = buffer.offer(_event("A", 3.0))
        assert outcome == OFFER_BLOCKED
        assert shed == []
        assert buffer.shed_total == 0
        assert buffer.offered_total == 2  # the blocked offer is not counted
        assert len(buffer) == 2

    def test_drop_oldest_evicts_global_head(self):
        buffer = BoundedIngestionBuffer(3, policy=OverloadPolicy.DROP_OLDEST)
        first = _event("A", 1.0)
        rest = [_event("B", 2.0), _event("A", 3.0)]
        for event in [first, *rest]:
            buffer.offer(event)
        newcomer = _event("C", 4.0)
        outcome, shed = buffer.offer(newcomer)
        assert outcome == OFFER_ACCEPTED
        assert shed == [first]
        assert buffer.shed_by_source == {"A": 1}
        assert buffer.pop_batch(None) == rest + [newcomer]

    def test_fair_shed_targets_weighted_heaviest_source(self):
        # B has the longer backlog, but A's events each feed 5 standing
        # queries: weighted heaviness 2*5=10 beats 3*1=3, so A is shed.
        weights = {"A": 5, "B": 1}
        buffer = BoundedIngestionBuffer(
            5, policy=OverloadPolicy.FAIR_SHED, weight_fn=weights.get
        )
        a_events = [_event("A", 1.0), _event("A", 2.0)]
        for event in a_events + [_event("B", 3.0), _event("B", 4.0), _event("B", 5.0)]:
            buffer.offer(event)
        _, shed = buffer.offer(_event("C", 6.0))
        assert shed == [a_events[0]]  # A's *oldest*
        assert buffer.occupancy["A"] == 1

    def test_fair_shed_without_weights_targets_longest_backlog(self):
        buffer = BoundedIngestionBuffer(4, policy=OverloadPolicy.FAIR_SHED)
        b_first = _event("B", 2.0)
        for event in [_event("A", 1.0), b_first, _event("B", 3.0), _event("B", 4.0)]:
            buffer.offer(event)
        _, shed = buffer.offer(_event("A", 5.0))
        assert shed == [b_first]

    def test_occupancy_and_high_watermark(self):
        buffer = BoundedIngestionBuffer(8)
        for index in range(6):
            buffer.offer(_event("A" if index % 2 else "B", float(index)))
        assert buffer.occupancy == {"A": 3, "B": 3}
        assert buffer.high_watermark == 6
        buffer.pop_batch(4)
        assert sum(buffer.occupancy.values()) == 2
        assert buffer.high_watermark == 6  # lifetime maximum


# --------------------------------------------------------------- sync server


class TestStreamServerOverload:
    """Capacity N, 10N pushed events, no interleaved draining."""

    N = 16

    def _run(self, policy):
        workload = _workload()
        events = workload.events()
        assert len(events) >= 10 * self.N
        engine = ShardedEngine(_registry(workload), n_shards=2)
        server = StreamServer(engine, capacity=self.N, policy=policy)
        for event in events[: 10 * self.N]:
            assert server.submit(event)
        return server

    def test_block_loses_zero(self):
        server = self._run(OverloadPolicy.BLOCK)
        server.flush()
        report = server.report()
        assert report.shed == 0
        assert report.delivered == report.ingested == 10 * self.N
        assert server.buffer.high_watermark <= self.N
        assert report.backpressure_engagements >= 1

    @pytest.mark.parametrize(
        "policy", (OverloadPolicy.DROP_OLDEST, OverloadPolicy.FAIR_SHED)
    )
    def test_shedding_policies_account_exactly(self, policy):
        server = self._run(policy)
        # Nothing drained yet: exactly capacity events buffered, the rest shed.
        assert server.shed_total == 10 * self.N - self.N
        assert len(server.buffer) == self.N
        assert sum(server.buffer.shed_by_source.values()) == server.shed_total
        server.flush()
        report = server.report()
        assert report.delivered + report.shed == report.ingested == 10 * self.N
        # The exposition's shed counters agree with the buffer accounting.
        parsed = parse_exposition(server.exposition())
        exported = sum(parsed["serve_shed_total"].values())
        assert exported == report.shed
        for labels in parsed["serve_shed_total"]:
            assert ("policy", policy) in labels


class TestStreamServerEquivalence:
    def test_block_server_is_bit_identical_to_raw_engine(self):
        workload = _workload()
        events = workload.events()
        raw = ShardedEngine(_registry(workload), n_shards=3)
        for event in events:
            raw.submit(event)
        raw.flush()
        expected = {
            entry.query_id: raw.results_for(entry.query_id).multiset()
            for entry in _registry(workload)
        }
        sequences = {
            entry.query_id: list(raw.results_for(entry.query_id).results)
            for entry in _registry(workload)
        }

        engine = ShardedEngine(_registry(workload), n_shards=3)
        server = StreamServer(engine, capacity=8, policy=OverloadPolicy.BLOCK)
        for event in events:
            server.submit(event)
        server.flush()
        for query_id in expected:
            collector = server.results_for(query_id)
            assert collector.multiset() == expected[query_id]
            # Not just the multiset — the emission *sequence* is unchanged.
            assert list(collector.results) == sequences[query_id]

    def test_serves_single_plan_execution_engine(self):
        workload = _workload()
        events = workload.events()
        entry = next(iter(_registry(workload)))
        subscribed = [e for e in events if e.source in entry.sources]
        expected = run_workload(
            entry.build_plan(), subscribed, entry.query.window.length
        ).results.multiset()

        registry_entry = next(iter(_registry(workload)))
        context = ExecutionContext(window=Window(registry_entry.query.window.length))
        engine = ExecutionEngine(registry_entry.build_plan(), context)
        server = StreamServer(engine, capacity=4, policy=OverloadPolicy.BLOCK)
        for event in subscribed:
            server.submit(event)
        server.flush()
        assert engine.collector.multiset() == expected
        parsed = parse_exposition(server.exposition())
        assert get_metric_value(parsed, "serve_results_total") == len(
            engine.collector.multiset()
        )


class TestAdmission:
    def test_accept_all_admits(self):
        assert accept_all(_event("A", 1.0), None)

    def test_custom_admission_rejects_before_buffering(self):
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=1)
        banned = workload.events()[0].source

        def no_banned(event, server):
            return event.source != banned

        server = StreamServer(engine, capacity=64, admission=no_banned)
        events = workload.events()[:50]
        admitted = server.submit_many(events)
        expected_rejects = sum(1 for e in events if e.source == banned)
        assert expected_rejects > 0
        assert admitted == len(events) - expected_rejects
        assert server.rejected_total == expected_rejects
        assert banned not in server.buffer.occupancy
        parsed = parse_exposition(server.exposition())
        assert get_metric_value(parsed, "serve_rejected_total") == expected_rejects

    def test_depth_limit_admission_consults_server_depth(self):
        class FakeServer:
            def __init__(self, depth):
                self._depth = depth

            def shard_queue_depth_total(self):
                return self._depth

        policy = DepthLimitAdmission(max_total_depth=10)
        event = _event("A", 1.0)
        assert policy(event, FakeServer(10))  # at the limit still admits
        assert not policy(event, FakeServer(11))
        assert policy.rejected == 1

    def test_depth_limit_admission_scopes_to_sources(self):
        class FakeServer:
            def shard_queue_depth_total(self):
                return 999

        policy = DepthLimitAdmission(max_total_depth=1, sources=("B",))
        assert policy(_event("A", 1.0), FakeServer())  # unscoped source passes
        assert not policy(_event("B", 2.0), FakeServer())


class TestServerLifecycle:
    def _server(self, **kwargs):
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=1)
        return StreamServer(engine, capacity=32, **kwargs), workload

    def test_submit_after_close_raises(self):
        server, workload = self._server()
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(workload.events()[0])

    def test_close_is_idempotent_and_flushes(self):
        server, workload = self._server()
        server.submit_many(workload.events()[:10])
        server.close()
        server.close()
        assert len(server.buffer) == 0
        assert server.report().delivered == 10

    def test_context_manager_closes(self):
        server, workload = self._server()
        with server as inside:
            inside.submit_many(workload.events()[:5])
        assert server.report().delivered == 5
        with pytest.raises(RuntimeError):
            server.submit(workload.events()[5])

    def test_rejects_invalid_drain_batch(self):
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=1)
        with pytest.raises(ValueError):
            StreamServer(engine, drain_batch=0)

    def test_rejects_unservable_engine(self):
        with pytest.raises(TypeError):
            StreamServer(object())

    def test_report_accounts_every_event(self):
        server, workload = self._server(policy=OverloadPolicy.DROP_OLDEST)
        events = workload.events()[:100]
        server.submit_many(events)
        report = server.report()
        assert report.ingested == 100
        assert report.delivered + report.shed + len(server.buffer) == 100


# --------------------------------------------------- flush-race regression


class TestShardedFlushRace:
    def test_concurrent_flushes_dispatch_pending_batch_once(self):
        """Two racing flush() calls must not double-dispatch the pending
        micro-batch (regression for the unlocked swap in _flush_pending)."""
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=2)
        dispatched = []
        original = engine._dispatch_batch

        def slow_dispatch(batch):
            dispatched.append(list(batch))
            time.sleep(0.01)  # widen the race window
            original(batch)

        engine._dispatch_batch = slow_dispatch
        events = workload.events()
        same_ts = [e for e in events if e.ts == events[0].ts] or events[:1]
        for event in same_ts:
            engine.ingest_async(event)

        barrier = threading.Barrier(4)
        errors = []

        def racer():
            try:
                barrier.wait()
                engine.flush()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = sum(len(batch) for batch in dispatched)
        assert total == len(same_ts), f"dispatched {total}, expected {len(same_ts)}"


# -------------------------------------------------------------- async server


class TestAsyncStreamServer:
    def test_submit_before_start_raises(self):
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=1)
        server = AsyncStreamServer(engine, capacity=8)

        async def main():
            with pytest.raises(RuntimeError):
                await server.submit(workload.events()[0])

        asyncio.run(main())

    def test_block_backpressure_bounds_buffer_and_loses_nothing(self):
        workload = _workload()
        events = workload.events()
        raw = ShardedEngine(_registry(workload), n_shards=2)
        for event in events:
            raw.submit(event)
        raw.flush()
        expected = {
            entry.query_id: raw.results_for(entry.query_id).multiset()
            for entry in _registry(workload)
        }

        engine = ShardedEngine(_registry(workload), n_shards=2)
        server = AsyncStreamServer(engine, capacity=8, drain_batch=4)

        async def main():
            async with server:
                for event in events:
                    assert await server.submit(event)
                    assert len(server.buffer) <= 8
                await server.flush()

        asyncio.run(main())
        report = server.report()
        assert report.shed == 0
        assert report.delivered == report.ingested == len(events)
        assert server.buffer.high_watermark <= 8
        for query_id, multiset in expected.items():
            assert server.results_for(query_id).multiset() == multiset

    @pytest.mark.parametrize(
        "policy", (OverloadPolicy.DROP_OLDEST, OverloadPolicy.FAIR_SHED)
    )
    def test_shedding_policies_account_exactly(self, policy):
        workload = _workload()
        events = workload.events()
        engine = ShardedEngine(_registry(workload), n_shards=2)
        server = AsyncStreamServer(engine, capacity=8, policy=policy)

        async def main():
            async with server:
                await server.submit_many(events)
                await server.flush()

        asyncio.run(main())
        report = server.report()
        assert report.delivered + report.shed == report.ingested == len(events)
        assert sum(server.buffer.shed_by_source.values()) == report.shed

    def test_close_flushes_buffered_events(self):
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=1)
        server = AsyncStreamServer(engine, capacity=256)

        async def main():
            await server.start()
            for event in workload.events()[:20]:
                await server.submit(event)
            await server.close()

        asyncio.run(main())
        assert len(server.buffer) == 0
        assert server.report().delivered == 20
