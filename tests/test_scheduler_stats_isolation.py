"""Scheduler stats isolation across ``retire`` + re-host cycles.

A long-lived multi-plan domain churns plans (registration, live migration,
deregistration).  Three isolation properties must hold:

* ``retire`` drops a retired plan's boost state, so a later plan whose
  operators happen to reuse the same ``id()`` can never inherit a boost;
* a retired (archived) runtime's context is disconnected from the shard's
  scheduler — straggler feedback replayed through it must not mutate the
  live domain's ``stats()`` counters;
* ``stats()`` counters are *domain-lifetime* totals: retiring a plan does
  not zero them, and a re-hosted plan accumulates into the same domain
  totals rather than resurrecting retired per-operator state.
"""

from __future__ import annotations

import pytest

from repro.multi import QueryRegistry, ShardedEngine, generate_multi_query_workload
from repro.operators.queues import InterOperatorQueue
from repro.plans.builder import STRATEGY_JIT
from repro.scheduler import JITAwareScheduler, ReadyInput
from repro.streams.tuples import AtomicTuple


class _Op:
    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"_Op({self.name})"


def _ready_input(context, name, ts, order, operator=None):
    queue = InterOperatorQueue(f"q{order}", context)
    item = ReadyInput(
        operator=operator if operator is not None else _Op(name),
        port="left",
        queue=queue,
        depth=0,
        order=order,
    )
    queue.push(AtomicTuple(name, ts, {"x": 1}))
    return item


def _workload():
    return generate_multi_query_workload(
        n_queries=4, n_sources=4, rate=0.8, window_seconds=20, dmax=4, duration=90, seed=11
    )


def _registry(workload):
    registry = QueryRegistry()
    for query in workload.queries():
        registry.register(query, strategy=STRATEGY_JIT)
    return registry


# --------------------------------------------------------- unit: boost state


class TestBoostRetirement:
    def test_retire_drops_the_operators_boost(self, context):
        scheduler = JITAwareScheduler(boost_steps=8)
        boosted = _Op("retiring")
        item = _ready_input(context, "R", ts=5.0, order=0, operator=boosted)
        scheduler.on_ready(item)
        scheduler.notify_feedback(boosted, _Op("x"), "resume")
        assert scheduler._boosts
        scheduler.retire((item,))
        assert not scheduler._boosts
        assert scheduler.ready_count() == 0
        # Post-retire scheduling is pure FIFO: a fresh plan's operators win
        # by head age, never by a boost inherited from the retired plan.
        young = _ready_input(context, "Y", ts=9.0, order=1)
        old = _ready_input(context, "O", ts=1.0, order=2)
        scheduler.on_ready(young)
        scheduler.on_ready(old)
        assert scheduler.pop_next() is old

    def test_partial_retire_keeps_live_ports_boost(self, context):
        """Retiring one input of a still-hosted operator keeps its boost."""
        scheduler = JITAwareScheduler(boost_steps=8)
        operator = _Op("two-port")
        left = _ready_input(context, "L", ts=1.0, order=0, operator=operator)
        right = _ready_input(context, "R", ts=2.0, order=1, operator=operator)
        scheduler.on_ready(left)
        scheduler.on_ready(right)
        scheduler.notify_feedback(operator, _Op("x"), "resume")
        scheduler.retire((left,))
        assert id(operator) in scheduler._boosts
        other = _ready_input(context, "A", ts=0.5, order=2)
        scheduler.on_ready(other)
        # The surviving port is still boosted ahead of the older FIFO head.
        assert scheduler.pop_next() is right

    def test_stats_are_domain_lifetime_totals(self, context):
        scheduler = JITAwareScheduler(boost_steps=1)
        boosted = _Op("b")
        item = _ready_input(context, "B", ts=1.0, order=0, operator=boosted)
        scheduler.on_ready(item)
        scheduler.notify_feedback(boosted, _Op("x"), "resume")
        assert scheduler.pop_next() is item
        before = scheduler.stats()
        assert before == {"boosts_granted": 1, "boosted_servings": 1}
        scheduler.retire((item,))
        # Retire affects per-operator state only, never the domain totals.
        assert scheduler.stats() == before


# ------------------------------------------- engine: archived-context fences


class TestRetiredContextIsolation:
    def test_archived_context_cannot_mutate_stats(self):
        workload = _workload()
        events = workload.events()
        half = len(events) // 2
        with ShardedEngine(
            _registry(workload), n_shards=1, scheduler="jit_aware"
        ) as engine:
            for event in events[:half]:
                engine.submit(event)
            shard = engine.shards[0]
            retired = engine.retire_query("q1")
            before = dict(shard.scheduler.stats())
            # A straggler (replayed/migrated runtime) firing feedback through
            # the archived context must not reach the live scheduler.
            retired.context.notify_feedback(_Op("p"), _Op("c"), "suspend")
            assert shard.scheduler.stats() == before
            for event in events[half:]:
                engine.submit(event)

    def test_shared_subtree_context_detached_with_last_subscriber(self):
        workload = _workload()
        events = workload.events()
        registry = _registry(workload)
        # One duplicate of q0: two subscribers on one shared subtree.
        registry.register(workload.query(0), query_id="dup0", strategy=STRATEGY_JIT)
        with ShardedEngine(
            registry, n_shards=1, scheduler="jit_aware", share_subplans=True
        ) as engine:
            shard = engine.shards[0]
            for event in events[: len(events) // 2]:
                engine.submit(event)
            shared = next(
                r.shared for r in shard.runtimes if r.query_id == "q0"
            )
            assert set(shared.subscribers) == {"q0", "dup0"}
            engine.retire_query("q0")
            # Refcounted: the survivor keeps the subtree (and its listener).
            assert shard.shared_subplans_active >= 1
            engine.retire_query("dup0")
            before = dict(shard.scheduler.stats())
            shared.context.notify_feedback(_Op("p"), _Op("c"), "suspend")
            assert shard.scheduler.stats() == before

    def test_rehost_cycle_leaves_no_stale_boost_keys(self):
        """After churn, every boost entry belongs to a live operator."""
        workload = _workload()
        events = workload.events()
        third = len(events) // 3
        registry = _registry(workload)
        with ShardedEngine(
            registry, n_shards=1, scheduler="jit_aware"
        ) as engine:
            shard = engine.shards[0]
            for event in events[:third]:
                engine.submit(event)
            engine.retire_query("q2")
            granted_mid = shard.scheduler.stats()["boosts_granted"]
            rehosted = QueryRegistry().register(
                workload.query(2), query_id="q2b", strategy=STRATEGY_JIT
            )
            engine.add_query(rehosted)
            for event in events[third:]:
                engine.submit(event)
            live = {
                id(t.operator)
                for r in shard.runtimes
                for t in r.templates
            }
            assert set(shard.scheduler._boosts) <= live
            # The re-hosted plan accumulates into the same domain totals.
            assert shard.scheduler.stats()["boosts_granted"] >= granted_mid
            counts = {r.query_id: r.collector.count for r in shard.runtimes}
            assert "q2b" in counts
