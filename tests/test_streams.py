"""Unit tests for the stream substrate: time, schema, tuples, sources, generators."""

from __future__ import annotations

import pytest

from repro.streams.schema import Attribute, SourceSchema, StreamCatalog
from repro.streams.sources import (
    PeriodicArrivals,
    PoissonArrivals,
    ScriptedArrivals,
    StreamSource,
    merge_sources,
)
from repro.streams.generators import (
    CliqueJoinWorkload,
    UniformValueGenerator,
    ZipfValueGenerator,
    generate_clique_workload,
    source_names,
)
from repro.streams.time import SimulationClock, Window, minutes, seconds
from repro.streams.tuples import AtomicTuple, CompositeTuple, join_tuples


# --------------------------------------------------------------------------- time


class TestWindow:
    def test_minutes_conversion(self):
        assert minutes(5) == 300.0
        assert seconds(42) == 42.0

    def test_from_minutes(self):
        assert Window.from_minutes(5).length == 300.0

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            Window(0)
        with pytest.raises(ValueError):
            Window(-1)

    def test_contains_and_expired(self):
        w = Window(10)
        assert w.contains(0.0, 5.0)
        assert not w.contains(0.0, 10.0)
        assert w.expired(0.0, 10.0)
        assert not w.expired(0.0, 9.999)

    def test_expiry_and_horizon(self):
        w = Window(10)
        assert w.expiry(3.0) == 13.0
        assert w.purge_horizon(25.0) == 15.0

    def test_joinable_is_symmetric(self):
        w = Window(10)
        assert w.joinable(0.0, 10.0)
        assert w.joinable(10.0, 0.0)
        assert not w.joinable(0.0, 10.5)


class TestSimulationClock:
    def test_advances_forward(self):
        clock = SimulationClock()
        assert clock.advance_to(1.5) == 1.5
        assert clock.advance_to(1.5) == 1.5
        assert clock.advance_to(2.0) == 2.0

    def test_rejects_backwards_movement(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        clock.reset()
        assert clock.now == 0.0
        clock.advance_to(1.0)


# --------------------------------------------------------------------------- schema


class TestSchema:
    def test_attribute_validation(self):
        with pytest.raises(ValueError):
            Attribute("")
        with pytest.raises(ValueError):
            Attribute("x", size_bytes=0)

    def test_schema_of(self):
        schema = SourceSchema.of("A", ["x1", "x2"])
        assert schema.attribute_names == ("x1", "x2")
        assert schema.has_attribute("x1")
        assert not schema.has_attribute("zz")
        assert schema.attribute("x2").name == "x2"
        with pytest.raises(KeyError):
            schema.attribute("zz")

    def test_schema_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SourceSchema("A", (Attribute("x"), Attribute("x")))

    def test_tuple_size(self):
        schema = SourceSchema.of("A", ["x1", "x2"])
        assert schema.tuple_size_bytes == 16 + 16

    def test_catalog(self):
        catalog = StreamCatalog.from_schemas(
            [SourceSchema.of("A", ["x"]), SourceSchema.of("B", ["y"])]
        )
        assert len(catalog) == 2
        assert "A" in catalog and "C" not in catalog
        assert catalog.source_names == ["A", "B"]
        catalog.validate_reference("A", "x")
        with pytest.raises(KeyError):
            catalog.validate_reference("A", "y")
        with pytest.raises(KeyError):
            catalog.schema("C")

    def test_catalog_conflicting_registration(self):
        catalog = StreamCatalog()
        catalog.register(SourceSchema.of("A", ["x"]))
        catalog.register(SourceSchema.of("A", ["x"]))  # identical is fine
        with pytest.raises(ValueError):
            catalog.register(SourceSchema.of("A", ["y"]))


# --------------------------------------------------------------------------- tuples


class TestTuples:
    def test_atomic_tuple_basics(self):
        t = AtomicTuple("A", 3.0, {"x": 1, "y": 2}, seq=5)
        assert t.sources == ("A",)
        assert t.components == (t,)
        assert t.value("A", "x") == 1
        assert t.get("y") == 2
        assert t.get("zz", -1) == -1
        assert t.covers("A") and not t.covers("B")
        assert t.expires_at(10.0) == 13.0

    def test_atomic_tuple_errors(self):
        t = AtomicTuple("A", 3.0, {"x": 1})
        with pytest.raises(KeyError):
            t.value("B", "x")
        with pytest.raises(KeyError):
            t.value("A", "nope")
        with pytest.raises(ValueError):
            AtomicTuple("", 0.0, {})

    def test_atomic_equality_and_hash(self):
        a = AtomicTuple("A", 1.0, {"x": 1}, seq=0)
        b = AtomicTuple("A", 1.0, {"x": 1}, seq=0)
        c = AtomicTuple("A", 1.0, {"x": 2}, seq=0)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_composite_from_join(self):
        a = AtomicTuple("A", 1.0, {"x": 1})
        b = AtomicTuple("B", 2.0, {"x": 1})
        ab = join_tuples(a, b)
        assert isinstance(ab, CompositeTuple)
        assert ab.sources == ("A", "B")
        assert ab.ts == 2.0
        assert ab.component("A") is a
        assert ab.value("B", "x") == 1
        assert ab.covers("A") and not ab.covers("C")

    def test_composite_timestamp_is_max(self):
        a = AtomicTuple("A", 5.0, {"x": 1})
        b = AtomicTuple("B", 2.0, {"x": 1})
        assert join_tuples(a, b).ts == 5.0

    def test_join_rejects_overlap(self):
        a1 = AtomicTuple("A", 1.0, {"x": 1}, seq=0)
        a2 = AtomicTuple("A", 2.0, {"x": 2}, seq=1)
        with pytest.raises(ValueError):
            join_tuples(a1, a2)

    def test_composite_order_independent_equality(self):
        a = AtomicTuple("A", 1.0, {"x": 1})
        b = AtomicTuple("B", 2.0, {"x": 1})
        c = AtomicTuple("C", 3.0, {"y": 1})
        left_first = join_tuples(join_tuples(a, b), c)
        right_first = join_tuples(a, join_tuples(b, c))
        assert left_first == right_first
        assert hash(left_first) == hash(right_first)

    def test_contains_sub_tuple(self):
        a = AtomicTuple("A", 1.0, {"x": 1})
        b = AtomicTuple("B", 2.0, {"x": 1})
        ab = join_tuples(a, b)
        assert ab.contains(a)
        assert ab.contains(ab)
        other_a = AtomicTuple("A", 1.0, {"x": 9}, seq=7)
        assert not ab.contains(other_a)

    def test_composite_needs_two_components(self):
        with pytest.raises(ValueError):
            CompositeTuple([AtomicTuple("A", 1.0, {"x": 1})])


# --------------------------------------------------------------------------- sources


class TestArrivalProcesses:
    def test_poisson_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_poisson_rough_rate(self):
        import random

        arrivals = list(PoissonArrivals(2.0).timestamps(1000.0, random.Random(1)))
        assert 1600 < len(arrivals) < 2400
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 1000 for t in arrivals)

    def test_periodic(self):
        import random

        arrivals = list(PeriodicArrivals(2.0, offset=1.0).timestamps(10.0, random.Random(0)))
        assert arrivals == [1.0, 3.0, 5.0, 7.0, 9.0]
        with pytest.raises(ValueError):
            PeriodicArrivals(0)

    def test_scripted(self):
        import random

        arrivals = list(ScriptedArrivals([0.5, 2.0, 9.0]).timestamps(5.0, random.Random(0)))
        assert arrivals == [0.5, 2.0]
        with pytest.raises(ValueError):
            ScriptedArrivals([2.0, 1.0])


class TestStreamSource:
    def _source(self, seed: int = 1) -> StreamSource:
        return StreamSource(
            schema=SourceSchema.of("A", ["x"]),
            arrivals=PeriodicArrivals(1.0),
            value_generator=UniformValueGenerator(high=5),
            seed=seed,
        )

    def test_events_are_deterministic(self):
        s = self._source()
        first = s.events(10.0)
        second = s.events(10.0)
        assert [e.tuple.attrs for e in first] == [e.tuple.attrs for e in second]
        assert [e.ts for e in first] == [e.ts for e in second]

    def test_sequences_increase(self):
        events = self._source().events(5.0)
        assert [e.tuple.seq for e in events] == list(range(len(events)))

    def test_merge_sources_is_time_ordered(self):
        a = self._source(seed=1)
        b = StreamSource(
            schema=SourceSchema.of("B", ["y"]),
            arrivals=PeriodicArrivals(0.7),
            value_generator=UniformValueGenerator(high=5),
            seed=2,
        )
        merged = merge_sources([a, b], 10.0)
        assert [e.ts for e in merged] == sorted(e.ts for e in merged)
        assert {e.source for e in merged} == {"A", "B"}

    def test_incomplete_value_generator_is_rejected(self):
        source = StreamSource(
            schema=SourceSchema.of("A", ["x", "y"]),
            arrivals=PeriodicArrivals(1.0),
            value_generator=lambda rng, schema: {"x": 1},
            seed=0,
        )
        with pytest.raises(ValueError):
            source.events(3.0)


# --------------------------------------------------------------------------- generators


class TestValueGenerators:
    def test_uniform_range(self):
        import random

        gen = UniformValueGenerator(high=3)
        rng = random.Random(0)
        schema = SourceSchema.of("A", ["x", "y"])
        for _ in range(50):
            values = gen(rng, schema)
            assert set(values) == {"x", "y"}
            assert all(1 <= v <= 3 for v in values.values())
        with pytest.raises(ValueError):
            UniformValueGenerator(high=0)

    def test_zipf_skews_to_small_values(self):
        import random

        gen = ZipfValueGenerator(high=10, exponent=1.5)
        rng = random.Random(0)
        schema = SourceSchema.of("A", ["x"])
        draws = [gen(rng, schema)["x"] for _ in range(300)]
        assert all(1 <= v <= 10 for v in draws)
        assert draws.count(1) > draws.count(10)


class TestCliqueWorkload:
    def test_source_names(self):
        assert source_names(3) == ("A", "B", "C")
        assert len(source_names(30)) == 30
        with pytest.raises(ValueError):
            source_names(0)

    def test_pair_columns_count(self):
        wl = generate_clique_workload(4, 1.0, 60, 10, 10)
        assert len(wl.pair_columns) == 6
        assert wl.columns_of("A") == ("x1", "x2", "x3")
        assert wl.columns_of("D") == ("x3", "x5", "x6")

    def test_equi_join_conditions_match_paper_example(self):
        wl = generate_clique_workload(4, 1.0, 60, 10, 10)
        conditions = wl.equi_join_conditions()
        assert (("A", "x1"), ("B", "x1")) in conditions
        assert (("C", "x6"), ("D", "x6")) in conditions
        assert len(conditions) == 6

    def test_catalog_and_events(self):
        wl = generate_clique_workload(3, 2.0, 30, 5, 20, seed=3)
        catalog = wl.catalog()
        assert catalog.source_names == ["A", "B", "C"]
        events = wl.events()
        assert events == wl.events()  # deterministic replay
        assert all(e.ts < 20 for e in events)
        assert {e.source for e in events} == {"A", "B", "C"}

    def test_value_range_override(self):
        wl = generate_clique_workload(
            3, 1.0, 30, 5, 60, seed=1, value_range_overrides={"C": 500}
        )
        assert wl.max_value("C") == 500
        assert wl.max_value("A") == 5
        c_values = [
            v
            for e in wl.events()
            if e.source == "C"
            for v in e.tuple.attrs.values()
        ]
        assert max(c_values) > 5  # overridden range actually used

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_clique_workload(1, 1.0, 30, 5, 10)
        with pytest.raises(ValueError):
            generate_clique_workload(3, 1.0, 30, 0, 10)
        with pytest.raises(ValueError):
            CliqueJoinWorkload(3, 1.0, Window(30), 5, 10, value_range_overrides={"Z": 9})

    def test_describe_mentions_parameters(self):
        wl = generate_clique_workload(3, 1.0, 30, 5, 10, seed=7)
        text = wl.describe()
        assert "N=3" in text and "dmax=5" in text and "seed=7" in text
