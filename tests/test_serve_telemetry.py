"""Tests for the serving telemetry surface (repro.serve.telemetry).

UTFW-style coverage: the metric primitives and registry are tested through
the *exposition text* wherever possible (parse → assert existence and
range), so the tests pin the externally visible contract scrapers rely on.
The second half drives a real sharded engine through a
:class:`StreamServer` and asserts every documented metric family exists
with a sane value — and that instrumenting changes no result sequences.
"""

from __future__ import annotations

import pytest

from repro.engine import run_workload
from repro.health import HealthMonitor, QuerySLO
from repro.multi import QueryRegistry, ShardedEngine, generate_multi_query_workload
from repro.plans.builder import STRATEGY_JIT, STRATEGY_REF
from repro.serve import (
    METRIC_DOC,
    Counter,
    Gauge,
    Histogram,
    OverloadPolicy,
    StreamServer,
    TelemetryError,
    TelemetryRegistry,
    get_metric_value,
    parse_exposition,
    validate_metric_exists,
    validate_metric_range,
)

# ------------------------------------------------------------------ primitives


class TestCounter:
    def test_increments_and_renders(self):
        counter = Counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        parsed = parse_exposition("\n".join(counter.render()))
        assert parsed["requests_total"][()] == 3.5

    def test_rejects_negative_increment(self):
        counter = Counter("c_total", "x")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("events_total", "x", ("source",))
        counter.labels(source="A").inc()
        counter.labels(source="A").inc()
        counter.labels(source="B").inc()
        assert counter.value(source="A") == 2
        assert counter.value(source="B") == 1
        assert counter.value(source="C") == 0
        assert counter.total == 3

    def test_labelless_inc_on_labelled_counter_raises(self):
        counter = Counter("events_total", "x", ("source",))
        with pytest.raises(TelemetryError):
            counter.inc()

    def test_invalid_name_rejected(self):
        with pytest.raises(TelemetryError):
            Counter("bad name!", "x")


class TestGauge:
    def test_set_and_render(self):
        gauge = Gauge("depth", "x")
        gauge.set(7)
        assert get_metric_value("\n".join(gauge.render()), "depth") == 7

    def test_callback_sampled_at_render(self):
        state = {"value": 1}
        gauge = Gauge("live", "x", callback=lambda: state["value"])
        assert gauge.value() == 1
        state["value"] = 42
        assert get_metric_value("\n".join(gauge.render()), "live") == 42

    def test_callback_mapping_becomes_labelled_series(self):
        gauge = Gauge("depth", "x", ("shard",), callback=lambda: {"0": 3, "1": 5})
        text = "\n".join(gauge.render())
        assert get_metric_value(text, "depth", {"shard": "0"}) == 3
        assert get_metric_value(text, "depth", {"shard": "1"}) == 5

    def test_set_on_callback_gauge_raises(self):
        gauge = Gauge("live", "x", callback=lambda: 0)
        with pytest.raises(TelemetryError):
            gauge.set(1)


class TestHistogram:
    def test_buckets_are_cumulative(self):
        hist = Histogram("lat", "x", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 99.0):
            hist.observe(value)
        parsed = parse_exposition("\n".join(hist.render()))
        assert parsed["lat_bucket"][(("le", "1"),)] == 2
        assert parsed["lat_bucket"][(("le", "5"),)] == 3
        assert parsed["lat_bucket"][(("le", "+Inf"),)] == 4
        assert parsed["lat_count"][()] == 4
        assert parsed["lat_sum"][()] == pytest.approx(103.2)

    def test_nearest_rank_percentiles(self):
        hist = Histogram("lat", "x", buckets=(1000.0,))
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.percentile(0.5) == 50
        assert hist.percentile(0.95) == 95
        assert hist.percentile(0.99) == 99
        assert hist.percentile(1.0) == 100

    def test_percentile_of_empty_is_zero(self):
        assert Histogram("lat", "x").percentile(0.5) == 0.0

    def test_quantile_series_in_exposition(self):
        hist = Histogram("lat", "x", buckets=(10.0,), quantiles=(0.5,))
        hist.observe(4.0)
        text = "\n".join(hist.render())
        assert get_metric_value(text, "lat_quantile", {"quantile": "0.5"}) == 4.0

    def test_window_eviction_keeps_lifetime_counts(self):
        hist = Histogram("lat", "x", buckets=(1000.0,), max_samples=10)
        for value in range(100):
            hist.observe(float(value))
        # Quantiles see only the freshest 10 observations …
        assert hist.percentile(0.5) == 94
        # … but count/sum stay lifetime totals.
        assert hist.count == 100
        assert hist.sum == sum(range(100))

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("lat", "x", buckets=(5.0, 1.0))


class TestRegistry:
    def test_idempotent_by_name(self):
        registry = TelemetryRegistry()
        first = registry.counter("a_total", "x")
        second = registry.counter("a_total", "x")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = TelemetryRegistry()
        registry.counter("a_total", "x")
        with pytest.raises(TelemetryError):
            registry.gauge("a_total", "x")

    def test_exposition_has_help_and_type(self):
        registry = TelemetryRegistry()
        registry.counter("a_total", "Helpful.")
        text = registry.exposition()
        assert "# HELP a_total Helpful." in text
        assert "# TYPE a_total counter" in text

    def test_get_unknown_raises(self):
        with pytest.raises(TelemetryError):
            TelemetryRegistry().get("nope")

    def test_contains_and_names(self):
        registry = TelemetryRegistry()
        registry.gauge("g", "x")
        assert "g" in registry
        assert registry.names == ["g"]


class TestHelpers:
    def test_validate_range_rejects_outside(self):
        text = 'x_total 5\n'
        assert validate_metric_range(text, "x_total", 0, 10) == 5
        with pytest.raises(TelemetryError):
            validate_metric_range(text, "x_total", 6, 10)

    def test_get_metric_value_requires_labels_when_ambiguous(self):
        text = 'd{shard="0"} 1\nd{shard="1"} 2\n'
        with pytest.raises(TelemetryError):
            get_metric_value(text, "d")
        assert get_metric_value(text, "d", {"shard": "1"}) == 2

    def test_missing_metric_raises(self):
        with pytest.raises(TelemetryError):
            validate_metric_exists("a 1\n", "b")


class TestLabelEscapingRoundTrip:
    """Prometheus text-format escaping: render -> parse must be lossless.

    The spec escapes ``\\``, ``"`` and newline inside label values; the
    parser must unescape left to right (``\\\\n`` is a backslash then an
    ``n``, not a newline) and must not split on commas or quotes *inside*
    escaped values.
    """

    AWKWARD = (
        "back\\slash",
        'quo"te',
        "new\nline",
        "comma,inside",
        "trailing}",
        "\\n-literal",
        "mix\\\"}\n,end",
    )

    @pytest.mark.parametrize("value", AWKWARD)
    def test_single_value_round_trips(self, value):
        counter = Counter("events_total", "x", ("source",))
        counter.labels(source=value).inc(3)
        parsed = parse_exposition("\n".join(counter.render()) + "\n")
        assert parsed["events_total"] == {(("source", value),): 3.0}

    def test_multiple_awkward_labels_round_trip(self):
        counter = Counter("events_total", "x", ("a", "b"))
        counter.labels(a='x,"y\\', b="z\n}").inc(1)
        counter.labels(a="plain", b="also plain").inc(2)
        parsed = parse_exposition("\n".join(counter.render()) + "\n")
        assert parsed["events_total"][(("a", 'x,"y\\'), ("b", "z\n}"))] == 1.0
        assert parsed["events_total"][(("a", "plain"), ("b", "also plain"))] == 2.0

    def test_get_metric_value_matches_escaped_series(self):
        gauge = Gauge("depth", "x", ("q",), callback=lambda: {'a"b': 4.0})
        text = "\n".join(gauge.render()) + "\n"
        assert get_metric_value(text, "depth", {"q": 'a"b'}) == 4.0

    def test_rendered_line_is_spec_escaped(self):
        counter = Counter("events_total", "x", ("source",))
        counter.labels(source='a\\b"c\nd').inc()
        line = [l for l in counter.render() if not l.startswith("#")][0]
        assert 'source="a\\\\b\\"c\\nd"' in line


# ------------------------------------------------- live exposition & equivalence


def _workload():
    return generate_multi_query_workload(
        n_queries=6, n_sources=4, rate=0.8, window_seconds=20, dmax=4, duration=90, seed=11
    )


def _registry(workload):
    registry = QueryRegistry()
    for index, query in enumerate(workload.queries()):
        registry.register(query, strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF)
    return registry


@pytest.fixture(scope="module")
def served():
    """One sharded engine run through a block-policy server, plus its text."""
    workload = _workload()
    engine = ShardedEngine(_registry(workload), n_shards=2, scheduler="jit_aware")
    server = StreamServer(engine, capacity=32, policy=OverloadPolicy.BLOCK)
    for event in workload.events():
        server.submit(event)
    server.flush()
    return server, parse_exposition(server.exposition())


class TestDocumentedMetricsExist:
    """Every family in METRIC_DOC must appear in a live exposition, in range."""

    def test_counters_and_gauges(self, served):
        server, parsed = served
        n_events = server.ingested_total
        assert n_events > 0
        # Sample names differ from family names for histograms.
        checks = {
            "serve_ingested_total": (1, n_events),
            "serve_delivered_total": (1, n_events),
            "serve_rejected_total": (0, 0),
            "serve_results_total": (1, float("inf")),
            "serve_backpressure_engagements_total": (1, float("inf")),
            "serve_events_per_second": (0.000001, float("inf")),
            "serve_buffer_occupancy": (0, 32),
            "serve_buffer_capacity": (32, 32),
            "serve_shard_queue_depth": (0, 0),  # flushed → drained
            "serve_ingest_watermark": (0.000001, float("inf")),
            "serve_suspension_rate_per_second": (0, float("inf")),
            "serve_resumption_rate_per_second": (0, float("inf")),
            "serve_scheduler_steps_total": (1, float("inf")),
            "serve_scheduler_boosts_granted_total": (0, float("inf")),
            "serve_scheduler_boosted_servings_total": (0, float("inf")),
            "serve_shared_subplans_active": (0, 0),  # sharing off in fixture
            "serve_shared_subplan_hits_total": (0, 0),
            "serve_shard_steps_per_event": (0.000001, float("inf")),
            "serve_shard_worker_alive": (1, 1),  # inline shards: always live
            "serve_shard_worker_restarts_total": (0, 0),
            "serve_uptime_seconds": (0.0, float("inf")),
        }
        for name, (low, high) in checks.items():
            series = parsed[name]
            assert series, f"metric {name} has no series"
            for labels, value in series.items():
                assert low <= value <= high, f"{name}{labels} = {value} not in [{low}, {high}]"

    def test_shed_total_absent_when_nothing_shed(self, served):
        _, parsed = served
        # block policy sheds nothing, so the family renders no samples; the
        # family is still registered on the server.
        assert parsed.get("serve_shed_total", {}) == {}

    def test_latency_histogram_full_family(self, served):
        server, parsed = served
        count = validate_metric_range(parsed, "serve_result_latency_count", 1)
        assert count == server.report().results
        validate_metric_range(parsed, "serve_result_latency_sum", 0)
        buckets = parsed["serve_result_latency_bucket"]
        inf_key = (("le", "+Inf"),)
        assert buckets[inf_key] == count
        # Cumulative: every bucket ≤ the +Inf bucket.
        assert all(value <= count for value in buckets.values())
        for quantile in ("0.5", "0.95", "0.99"):
            validate_metric_range(
                parsed, "serve_result_latency_quantile", 0, labels={"quantile": quantile}
            )
        # Percentiles are monotone in the quantile.
        p50 = get_metric_value(parsed, "serve_result_latency_quantile", {"quantile": "0.5"})
        p95 = get_metric_value(parsed, "serve_result_latency_quantile", {"quantile": "0.95"})
        p99 = get_metric_value(parsed, "serve_result_latency_quantile", {"quantile": "0.99"})
        assert p50 <= p95 <= p99

    def test_suspension_and_resumption_counters(self, served):
        server, parsed = served
        # The workload is dense enough (dmax=4, live window) that MNS
        # feedback must have flowed; suspensions ≥ resumptions ≥ 0.
        total_suspend = sum(parsed["serve_suspensions_total"].values())
        total_resume = sum(parsed["serve_resumptions_total"].values())
        assert total_suspend >= 1
        assert 0 <= total_resume <= total_suspend

    def test_sharing_metrics_engage_with_shared_engine(self):
        """With ``share_subplans=True`` the sharing gauges go live: subtrees
        are active, hits count the grafted registrations, and the per-shard
        steps-per-event ratio stays below the unshared run's."""
        workload = _workload()
        distinct = len({e.subplan_signature() for e in _registry(workload)})

        def overlapping_registry():
            # Four copies of each query: enough dedup that the shared run's
            # steps-per-event drops despite the added tee-drain steps.
            registry = _registry(workload)
            for copy in range(3):
                for index, query in enumerate(workload.queries()):
                    registry.register(
                        query,
                        query_id=f"dup{copy}_{index}",
                        strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF,
                    )
            return registry

        ratios = {}
        for share in (False, True):
            engine = ShardedEngine(
                overlapping_registry(), n_shards=1, scheduler="jit_aware",
                share_subplans=share,
            )
            server = StreamServer(engine, capacity=32, policy=OverloadPolicy.BLOCK)
            for event in workload.events():
                server.submit(event)
            server.flush()
            parsed = parse_exposition(server.exposition())
            active = sum(parsed["serve_shared_subplans_active"].values())
            hits = sum(parsed["serve_shared_subplan_hits_total"].values())
            if share:
                # Four copies per query collapse onto the distinct subtrees.
                assert active == distinct
                assert hits == 24 - distinct
            else:
                assert active == 0 and hits == 0
            ratios[share] = sum(parsed["serve_shard_steps_per_event"].values())
            server.close()
        assert 0 < ratios[True] < ratios[False]

    def test_every_documented_family_registered(self, served):
        server, _ = served
        for name in METRIC_DOC:
            assert name in server.telemetry, f"{name} not registered"

    def test_doc_covers_every_registered_family(self, served):
        server, _ = served
        undocumented = set(server.telemetry.names) - set(METRIC_DOC)
        assert not undocumented, f"registered but undocumented: {sorted(undocumented)}"


class TestHealthFamilies:
    """Exposition contract of the ``health_*`` bridge (repro.health)."""

    QUERY_FAMILIES = (
        "health_query_lag",
        "health_query_staleness_seconds",
        "health_query_results_total",
        "health_query_slo_state",
        "health_slo_breaches_total",
    )
    SHARD_FAMILIES = (
        "health_shard_ready_queues",
        "health_shard_starvation_age",
        "health_shard_mns_open",
        "health_shard_mns_oldest_age",
        "health_worker_stalled",
        "health_worker_stalls_total",
    )

    @pytest.fixture(scope="class")
    def monitored(self):
        """A served run with a HealthMonitor attached before ingestion."""
        workload = _workload()
        engine = ShardedEngine(_registry(workload), n_shards=2, scheduler="jit_aware")
        server = StreamServer(engine, capacity=32, policy=OverloadPolicy.BLOCK)
        monitor = HealthMonitor(
            server, slos={"q0": QuerySLO(max_lag=1e9), "q1": QuerySLO(min_events_per_sec=1e9)}
        )
        for event in workload.events():
            server.submit(event)
        server.flush()
        monitor.check()
        return server, monitor, parse_exposition(server.exposition())

    def test_families_empty_without_monitor(self, served):
        """Registered always; without a monitor the labeled families render
        header-only and the scalars read zero."""
        server, parsed = served
        assert parsed["health_monitor_attached"][()] == 0.0
        assert parsed["health_bundles_written_total"][()] == 0.0
        for family in self.QUERY_FAMILIES + self.SHARD_FAMILIES:
            assert family in server.telemetry
            assert parsed.get(family, {}) == {}

    def test_every_family_exists_in_range(self, monitored):
        server, _monitor, parsed = monitored
        n_queries = len(server.engine._runtimes)
        assert parsed["health_monitor_attached"][()] == 1.0
        assert parsed["health_bundles_written_total"][()] == 0.0
        ranges = {
            "health_query_lag": (0.0, float("inf"), n_queries),
            "health_query_staleness_seconds": (0.0, float("inf"), n_queries),
            "health_query_results_total": (1.0, float("inf"), n_queries),
            "health_query_slo_state": (0.0, 2.0, 2),  # only SLO'd queries
            "health_slo_breaches_total": (0.0, float("inf"), 2),
            "health_shard_ready_queues": (0.0, 0.0, 2),  # flushed → quiescent
            "health_shard_starvation_age": (0.0, 0.0, 2),
            "health_shard_mns_open": (0.0, float("inf"), 2),
            "health_shard_mns_oldest_age": (0.0, float("inf"), 2),
            "health_worker_stalled": (0.0, 0.0, 2),
            "health_worker_stalls_total": (0.0, 0.0, 2),
        }
        for family, (low, high, n_series) in ranges.items():
            series = parsed[family]
            assert len(series) == n_series, f"{family}: {series}"
            for labels, value in series.items():
                assert low <= value <= high, f"{family}{labels} = {value}"

    def test_slo_states_render_the_machine(self, monitored):
        _server, _monitor, parsed = monitored
        # q0's bound is unreachable → ok; q1's rate floor is unmeetable → breach.
        states = {labels[0][1]: value for labels, value in parsed["health_query_slo_state"].items()}
        assert states == {"q0": 0.0, "q1": 2.0}
        breaches = {labels[0][1]: value for labels, value in parsed["health_slo_breaches_total"].items()}
        assert breaches["q1"] >= 1.0

    def test_local_mns_open_matches_feedback_counters(self, monitored):
        """The monitor's edge-tracked open suspensions must reconcile with
        the serve-layer suspension/resumption counters, per shard."""
        _server, _monitor, parsed = monitored
        for shard in ("0", "1"):
            suspended = parsed["serve_suspensions_total"].get((("shard", shard),), 0.0)
            resumed = parsed["serve_resumptions_total"].get((("shard", shard),), 0.0)
            open_now = parsed["health_shard_mns_open"][(("shard", shard),)]
            assert open_now == suspended - resumed

    def test_query_label_escaping_round_trips(self):
        """Awkward query ids must survive the render → parse round trip."""
        awkward = 'q"0\\weird\nid'
        workload = _workload()
        registry = QueryRegistry()
        registry.register(workload.queries()[0], query_id=awkward)
        engine = ShardedEngine(registry, n_shards=1)
        server = StreamServer(engine, capacity=32, policy=OverloadPolicy.BLOCK)
        HealthMonitor(server)
        for event in workload.events()[:200]:
            server.submit(event)
        server.flush()
        parsed = parse_exposition(server.exposition())
        key = (("query", awkward),)
        assert key in parsed["health_query_lag"]
        assert parsed["health_query_results_total"][key] >= 0.0
        server.close()


class TestInstrumentationEquivalence:
    """Telemetry + block backpressure must not change any result sequence."""

    @pytest.mark.parametrize(
        "n_shards,drain_mode",
        ((1, "sync"), (3, "sync"), (3, "thread"), (2, "process")),
    )
    def test_served_matches_standalone(self, n_shards, drain_mode):
        workload = _workload()
        events = workload.events()
        registry = _registry(workload)
        standalone = {}
        for entry in registry:
            subscribed = [e for e in events if e.source in entry.sources]
            report = run_workload(
                entry.build_plan(), subscribed, entry.query.window.length
            )
            standalone[entry.query_id] = report.results.multiset()

        engine = ShardedEngine(
            _registry(workload), n_shards=n_shards, drain_mode=drain_mode
        )
        server = StreamServer(engine, capacity=16, policy=OverloadPolicy.BLOCK)
        for event in events:
            server.submit(event)
        server.flush()
        for query_id, expected in standalone.items():
            assert server.results_for(query_id).multiset() == expected
        report = server.report()
        assert report.shed == 0
        assert report.delivered == report.ingested == len(events)
        if drain_mode != "sync":
            engine.close()

    def test_process_mode_feedback_and_worker_gauges(self):
        """Worker-shipped feedback deltas must match sync-mode counting, and
        the worker gauges must reflect process-backend liveness."""
        workload = _workload()
        events = workload.events()

        def serve(drain_mode):
            engine = ShardedEngine(
                _registry(workload), n_shards=2, scheduler="jit_aware",
                drain_mode=drain_mode,
            )
            server = StreamServer(engine, capacity=32, policy=OverloadPolicy.BLOCK)
            for event in events:
                server.submit(event)
            server.flush()
            parsed = parse_exposition(server.exposition())
            server.close()
            return parsed

        sync_parsed = serve("sync")
        proc_parsed = serve("process")
        for family in ("serve_suspensions_total", "serve_resumptions_total"):
            assert proc_parsed[family] == sync_parsed[family]
        assert proc_parsed["serve_shard_worker_alive"] == {
            (("shard", "0"),): 1.0,
            (("shard", "1"),): 1.0,
        }
        assert proc_parsed["serve_shard_worker_restarts_total"] == {
            (("shard", "0"),): 0.0,
            (("shard", "1"),): 0.0,
        }
