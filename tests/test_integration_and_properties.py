"""Integration tests and property-based tests.

The central correctness property of the reproduction: JIT (under any
configuration), DOE and REF executions of the same workload produce exactly
the same result set, regardless of plan shape or execution mode.  Hypothesis
drives randomized workloads and configurations against that invariant, plus
invariants of the lower-level data structures.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.context import ExecutionContext
from repro.core.cns_lattice import CNSLattice
from repro.core.config import DetectionMode, JITConfig, RetentionPolicy
from repro.engine import run_workload
from repro.engine.results import result_multiset
from repro.experiments import (
    BUSHY_DEFAULTS,
    LEFT_DEEP_DEFAULTS,
    detection_mode_ablation,
    figure10,
    format_figure,
    plan_style_ablation,
    scaled_workload,
    scheduler_ablation,
    sweep_parameter,
)
from repro.operators.bloom import CountingBloomFilter
from repro.operators.state import OperatorState
from repro.plans.builder import (
    PLAN_BUSHY,
    PLAN_LEFT_DEEP,
    PLAN_RIGHT_DEEP,
    STRATEGY_DOE,
    STRATEGY_JIT,
    STRATEGY_REF,
    build_eddy_plan,
    build_mjoin_plan,
    build_xjoin_plan,
)
from repro.plans.query import ContinuousQuery
from repro.streams.generators import generate_clique_workload
from repro.streams.time import Window
from repro.streams.tuples import AtomicTuple


def _run_all(workload, shape, strategies, jit_config=None):
    query = ContinuousQuery.from_workload(workload)
    events = workload.events()
    out = {}
    for strategy in strategies:
        plan = build_xjoin_plan(query, shape=shape, strategy=strategy, jit_config=jit_config)
        report = run_workload(plan, events, window_length=workload.window.length)
        out[strategy] = report
    return out


# --------------------------------------------------------------------------- integration


class TestStrategyEquivalence:
    @pytest.mark.parametrize("shape", [PLAN_LEFT_DEEP, PLAN_BUSHY, PLAN_RIGHT_DEEP])
    @pytest.mark.parametrize("n_sources", [3, 4])
    def test_jit_and_doe_match_ref(self, shape, n_sources):
        workload = generate_clique_workload(
            n_sources=n_sources, rate=1.0, window_seconds=50, dmax=7, duration=120, seed=5
        )
        reports = _run_all(workload, shape, (STRATEGY_REF, STRATEGY_JIT, STRATEGY_DOE))
        ref = result_multiset(reports[STRATEGY_REF].results.results)
        assert result_multiset(reports[STRATEGY_JIT].results.results) == ref
        assert result_multiset(reports[STRATEGY_DOE].results.results) == ref
        assert reports[STRATEGY_REF].result_count > 0

    def test_jit_saves_cpu_on_selective_workload(self):
        # A selective top join over a 3-way left-deep plan (the Figure 16
        # N=3 setting at reduced scale) is a regime where JIT's savings
        # clearly exceed its detection overhead.
        workload = generate_clique_workload(
            n_sources=3,
            rate=1.0,
            window_seconds=36,
            dmax=50,
            duration=110,
            seed=9,
            value_range_overrides={"C": 5000},
        )
        reports = _run_all(
            workload,
            PLAN_LEFT_DEEP,
            (STRATEGY_REF, STRATEGY_JIT),
            jit_config=JITConfig(retention_policy=RetentionPolicy.WINDOW),
        )
        assert (
            reports[STRATEGY_JIT].cpu_units < reports[STRATEGY_REF].cpu_units
        ), "JIT should need fewer modelled CPU units than REF on a selective workload"

    def test_bloom_detection_is_correct(self):
        workload = generate_clique_workload(
            n_sources=3, rate=1.0, window_seconds=50, dmax=6, duration=120, seed=3
        )
        reports = _run_all(
            workload,
            PLAN_LEFT_DEEP,
            (STRATEGY_REF, STRATEGY_JIT),
            jit_config=JITConfig(detection_mode=DetectionMode.BLOOM),
        )
        assert result_multiset(reports[STRATEGY_JIT].results.results) == result_multiset(
            reports[STRATEGY_REF].results.results
        )

    def test_mjoin_and_eddy_match_xjoin_without_expiry(self):
        # With a window longer than the run, all plan styles share the same
        # multiway window semantics, so their outputs must coincide exactly.
        workload = generate_clique_workload(
            n_sources=3, rate=1.0, window_seconds=500, dmax=6, duration=90, seed=4
        )
        query = ContinuousQuery.from_workload(workload)
        events = workload.events()
        xjoin = run_workload(
            build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_REF),
            events,
            workload.window.length,
        )
        mjoin = run_workload(build_mjoin_plan(query), events, workload.window.length)
        eddy = run_workload(build_eddy_plan(query), events, workload.window.length)
        ref = result_multiset(xjoin.results.results)
        assert result_multiset(mjoin.results.results) == ref
        assert result_multiset(eddy.results.results) == ref
        # The paper's qualitative claim: M-Join trades memory for CPU.
        assert mjoin.peak_memory_kb <= xjoin.peak_memory_kb

    def test_experiment_harness_runs_figure_end_to_end(self):
        result = figure10(scale=0.02, values=(10, 20))
        assert len(result.points) == 2
        assert all(s > 0 for s in result.speedups())
        text = format_figure(result)
        assert "Figure 10" in text and "speedup" in text

    def test_sweep_and_ablations_smoke(self):
        points = sweep_parameter(
            LEFT_DEEP_DEFAULTS, "dmax", (30, 50), shape=PLAN_LEFT_DEEP, scale=0.03
        )
        assert len(points) == 2 and all(p.runs[STRATEGY_REF].events > 0 for p in points)
        detection = detection_mode_ablation(LEFT_DEEP_DEFAULTS.with_overrides(n_sources=3), scale=0.03)
        assert set(detection) == {"ref", "jit/lattice", "jit/bloom", "jit/empty_only"}
        styles = plan_style_ablation(LEFT_DEEP_DEFAULTS.with_overrides(n_sources=3), scale=0.03)
        assert "mjoin" in styles and "eddy" in styles
        schedulers = scheduler_ablation(LEFT_DEEP_DEFAULTS.with_overrides(n_sources=3), scale=0.03)
        assert "synchronous" in schedulers and "queued/fifo" in schedulers

    def test_scaled_workload_respects_boost(self):
        workload = scaled_workload(LEFT_DEEP_DEFAULTS, scale=0.05)
        assert workload.max_value("D") == 100 * LEFT_DEEP_DEFAULTS.dmax
        bushy = scaled_workload(BUSHY_DEFAULTS, scale=0.05)
        assert bushy.max_value("F") == BUSHY_DEFAULTS.dmax


# --------------------------------------------------------------------------- property-based


@st.composite
def workload_parameters(draw):
    """Random small clique workloads that still finish quickly."""
    return dict(
        n_sources=draw(st.integers(min_value=2, max_value=4)),
        rate=draw(st.sampled_from([0.5, 1.0, 2.0])),
        window_seconds=draw(st.sampled_from([20, 40, 80])),
        dmax=draw(st.integers(min_value=2, max_value=10)),
        duration=draw(st.sampled_from([60, 100])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@pytest.mark.slow
class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_parameters(), shape=st.sampled_from([PLAN_LEFT_DEEP, PLAN_BUSHY]))
    def test_jit_always_matches_ref(self, params, shape):
        workload = generate_clique_workload(**params)
        reports = _run_all(workload, shape, (STRATEGY_REF, STRATEGY_JIT))
        assert result_multiset(reports[STRATEGY_JIT].results.results) == result_multiset(
            reports[STRATEGY_REF].results.results
        )

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        params=workload_parameters(),
        detection=st.sampled_from([DetectionMode.LATTICE, DetectionMode.BLOOM, DetectionMode.EMPTY_ONLY]),
        divert=st.booleans(),
        propagate=st.booleans(),
    )
    def test_any_jit_configuration_matches_ref(self, params, detection, divert, propagate):
        workload = generate_clique_workload(**params)
        config = JITConfig(
            detection_mode=detection,
            divert_similar_arrivals=divert,
            propagate_feedback=propagate,
        )
        reports = _run_all(workload, PLAN_LEFT_DEEP, (STRATEGY_REF, STRATEGY_JIT), jit_config=config)
        assert result_multiset(reports[STRATEGY_JIT].results.results) == result_multiset(
            reports[STRATEGY_REF].results.results
        )

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_parameters())
    def test_results_are_temporally_ordered(self, params):
        workload = generate_clique_workload(**params)
        query = ContinuousQuery.from_workload(workload)
        plan = build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_JIT)
        report = run_workload(plan, workload.events(), workload.window.length)
        assert report.results.temporally_ordered


class TestPropertyDataStructures:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
    def test_counting_bloom_never_false_negative(self, values):
        bloom = CountingBloomFilter(num_bits=256, num_hashes=3)
        for v in values:
            bloom.add(v)
        assert all(bloom.might_contain(v) for v in values)
        for v in values:
            bloom.remove(v)
        assert len(bloom) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 5)),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0, max_value=120),
    )
    def test_state_purge_invariant(self, arrivals, horizon):
        context = ExecutionContext(window=Window(30.0))
        state = OperatorState("S", context)
        arrivals = sorted(arrivals, key=lambda a: a[0])
        for i, (ts, value) in enumerate(arrivals):
            state.insert(AtomicTuple("A", ts, {"x": value}, seq=i), now=ts)
        state.purge(horizon)
        remaining = [e.ts for e in state.probe()]
        assert all(ts >= horizon for ts in remaining)
        assert context.memory.current_bytes == sum(e.tuple.size_bytes for e in state.entries())

    @settings(max_examples=40, deadline=None)
    @given(
        components=st.integers(min_value=1, max_value=4),
        rows=st.lists(
            st.lists(st.booleans(), min_size=4, max_size=4), min_size=0, max_size=6
        ),
    )
    def test_lattice_mns_are_minimal_and_unmatched(self, components, rows):
        names = [f"s{i}" for i in range(components)]
        lattice = CNSLattice(names)
        lattice.reset()
        observations = [dict(zip(names, row[:components])) for row in rows]
        for row in observations:
            lattice.observe(row)
        survivors = lattice.surviving_mns()
        for mns in survivors:
            # (1) An MNS never matched any observed tuple (a node matches iff
            #     all of its components match).
            for row in observations:
                assert not all(row[name] for name in mns)
            # (2) Minimality: no strict subset is also reported.
            for other in survivors:
                assert not (other < mns)
