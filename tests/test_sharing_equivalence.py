"""Tests for multi-query common subexpression sharing (docs/SHARING.md).

The bedrock invariant: with ``share_subplans=True`` every query's result
multiset is bit-identical to its standalone unshared run — under every
scheduler policy, shard count, and drain mode.  On top of that, unit coverage
for signature canonicalization, overlay (selection/projection) grafting,
per-subscriber tee accounting, refcounted retirement, and a hypothesis sweep
asserting that arbitrary register/retire interleavings never leave orphan
queues, routes, scheduler orders or router subscriptions behind.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import JITConfig
from repro.engine import run_workload
from repro.multi import (
    QueryRegistry,
    ShardedEngine,
    generate_multi_query_workload,
    signature_partition,
)
from repro.operators import TeeOperator
from repro.operators.predicates import (
    AttributeCompare,
    AttributeRef,
    SelectionPredicate,
    ThetaJoinCondition,
)
from repro.plans.builder import (
    PLAN_BUSHY,
    PLAN_LEFT_DEEP,
    PLAN_RIGHT_DEEP,
    STRATEGY_JIT,
    STRATEGY_REF,
)
from repro.plans.query import ContinuousQuery
from repro.plans.signature import (
    canonical_condition,
    signature_key,
    subplan_signature,
)
from repro.streams.generators import generate_clique_workload

ALL_POLICIES = ("fifo", "round_robin", "priority", "jit_aware")

#: (n_shards, threaded) configurations the equivalence sweep covers.
SHARD_CONFIGS = ((1, False), (3, False), (3, True))


@pytest.fixture(scope="module")
def sharing_workload():
    """24 queries over 4 streams: widths cycle (2, 2, 3) and ring starts
    cycle mod 4, so only 8 distinct sub-cliques exist — every signature is
    shared by 3 queries once strategies repeat with period 6."""
    return generate_multi_query_workload(
        n_queries=24, n_sources=4, rate=0.8, window_seconds=20, dmax=4, duration=100, seed=3
    )


@pytest.fixture(scope="module")
def sharing_events(sharing_workload):
    return sharing_workload.events()


def _registry(workload) -> QueryRegistry:
    """Register the workload's queries, alternating REF and JIT strategies."""
    registry = QueryRegistry()
    for index, query in enumerate(workload.queries()):
        registry.register(
            query, strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF
        )
    return registry


@pytest.fixture(scope="module")
def standalone_multisets(sharing_workload, sharing_events):
    """Ground truth: each query run alone through a synchronous engine."""
    out = {}
    for entry in _registry(sharing_workload):
        subscribed = [e for e in sharing_events if e.source in entry.sources]
        report = run_workload(entry.build_plan(), subscribed, entry.query.window.length)
        out[entry.query_id] = report.results.multiset()
    return out


# ------------------------------------------------------------------ equivalence


class TestSharingEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("n_shards,threaded", SHARD_CONFIGS)
    def test_shared_matches_standalone_runs(
        self, sharing_workload, sharing_events, standalone_multisets, policy, n_shards, threaded
    ):
        registry = _registry(sharing_workload)
        with ShardedEngine(
            registry,
            n_shards=n_shards,
            scheduler=policy,
            threaded=threaded,
            share_subplans=True,
        ) as engine:
            engine.run(sharing_events)
            shared_active = sum(s.shared_subplans_active for s in engine.shards)
            hits = sum(s.shared_subplan_hits for s in engine.shards)
            # The workload is built to overlap: sharing must actually engage.
            assert 0 < shared_active < len(registry)
            assert hits == len(registry) - shared_active
            for query_id, expected in standalone_multisets.items():
                assert engine.results_for(query_id).multiset() == expected, (
                    f"{policy}/{n_shards} shard(s)/threaded={threaded}: "
                    f"query {query_id} diverged from its standalone run"
                )

    def test_sharing_on_equals_sharing_off(self, sharing_workload, sharing_events):
        """The toggle changes the physical plan layout, never the results."""
        counts = {}
        for share in (False, True):
            with ShardedEngine(
                _registry(sharing_workload),
                n_shards=2,
                scheduler="jit_aware",
                share_subplans=share,
            ) as engine:
                engine.run(sharing_events)
                counts[share] = {
                    qid: engine.results_for(qid).multiset()
                    for qid in _registry(sharing_workload).ids
                }
        assert counts[False] == counts[True]

    def test_dedup_on_one_shard(self, sharing_workload, sharing_events):
        """On one shard, hits count every registration after a group's first."""
        registry = _registry(sharing_workload)
        distinct = len({e.subplan_signature() for e in registry})
        with ShardedEngine(registry, n_shards=1, share_subplans=True) as engine:
            engine.run(sharing_events)
            shard = engine.shards[0]
            assert shard.shared_subplans_active == distinct
            assert shard.shared_subplan_hits == len(registry) - distinct
            for shared in shard.shared_subplans():
                assert shared.tee.subscriber_count == len(shared.subscribers)
                assert isinstance(shared.plan.root, TeeOperator)

    def test_tee_per_subscriber_delivery_counts(self, sharing_workload, sharing_events):
        """Every subscriber of one tee sees the full shared output stream."""
        registry = _registry(sharing_workload)
        with ShardedEngine(registry, n_shards=1, share_subplans=True) as engine:
            engine.run(sharing_events)
            for shared in engine.shards[0].shared_subplans():
                delivered = {s.query_id: s.delivered for s in shared.tee.subscribers}
                assert len(set(delivered.values())) == 1, delivered
                assert shared.tee.delivered_count == sum(delivered.values())


# ------------------------------------------------------------------ signatures


def _theta_query(left, comparator, right, window_seconds=20.0):
    base = generate_clique_workload(
        n_sources=2, rate=1.0, window_seconds=window_seconds, dmax=3, duration=10, seed=1
    )
    return ContinuousQuery(
        sources=base.names,
        window=base.window,
        predicate=type(ContinuousQuery.from_workload(base).predicate)(
            (ThetaJoinCondition(AttributeRef(*left), AttributeRef(*right), comparator),)
        ),
    )


class TestSignatureCanonicalization:
    def test_condition_order_is_irrelevant(self, sharing_workload):
        query = sharing_workload.query(2)  # a 3-source clique: 3 conditions
        assert query.n_sources == 3
        reordered = ContinuousQuery(
            sources=query.sources,
            window=query.window,
            predicate=type(query.predicate)(tuple(reversed(query.predicate.conditions))),
        )
        assert subplan_signature(query) == subplan_signature(reordered)

    def test_mirrored_theta_comparators_coincide(self):
        lt = _theta_query(("A", "x1"), "<", ("B", "x1"))
        gt = _theta_query(("B", "x1"), ">", ("A", "x1"))
        assert subplan_signature(lt) == subplan_signature(gt)
        assert canonical_condition(lt.predicate.conditions[0]) == canonical_condition(
            gt.predicate.conditions[0]
        )

    def test_equi_spellings_coincide(self):
        eq = _theta_query(("A", "x1"), "=", ("B", "x1"))
        eq2 = _theta_query(("B", "x1"), "==", ("A", "x1"))
        assert canonical_condition(eq.predicate.conditions[0]) == canonical_condition(
            eq2.predicate.conditions[0]
        )

    def test_named_shape_resolves_to_explicit_tree(self, sharing_workload):
        query = sharing_workload.query(2)
        from repro.plans.builder import paper_plan_shape

        explicit = paper_plan_shape(query.sources, PLAN_LEFT_DEEP)
        assert subplan_signature(query, shape=PLAN_LEFT_DEEP) == subplan_signature(
            query, shape=explicit
        )

    def test_differences_that_must_not_share(self, sharing_workload):
        query = sharing_workload.query(2)
        base = subplan_signature(query, strategy=STRATEGY_REF)
        assert subplan_signature(query, strategy=STRATEGY_JIT) != base
        assert subplan_signature(query, use_hash_index=True) != base
        assert subplan_signature(query, shape=PLAN_RIGHT_DEEP) != base
        # For 3 sources the bushy tree degenerates to the left-deep tree:
        # resolving named shapes first makes that coincidence share, correctly.
        assert subplan_signature(query, shape=PLAN_BUSHY) == base
        wider = ContinuousQuery(
            sources=query.sources,
            window=type(query.window)(query.window.length * 2),
            predicate=query.predicate,
        )
        assert subplan_signature(wider) != base

    def test_jit_config_resolution(self, sharing_workload):
        query = sharing_workload.query(0)
        implicit = subplan_signature(query, strategy=STRATEGY_JIT, jit_config=None)
        explicit = subplan_signature(
            query, strategy=STRATEGY_JIT, jit_config=JITConfig.paper_default()
        )
        assert implicit == explicit
        # REF ignores the configuration entirely.
        assert subplan_signature(query, strategy=STRATEGY_REF) == subplan_signature(
            query, strategy=STRATEGY_REF, jit_config=JITConfig.paper_default()
        )

    def test_selections_and_projection_are_excluded(self, sharing_workload):
        query = sharing_workload.query(0)
        filtered = ContinuousQuery(
            sources=query.sources,
            window=query.window,
            predicate=query.predicate,
            selections=(
                SelectionPredicate(
                    (AttributeCompare(AttributeRef(query.sources[0], "x1"), ">", 0),)
                ),
            ),
        )
        assert subplan_signature(query) == subplan_signature(filtered)

    def test_signature_key_is_stable_hex(self, sharing_workload):
        entry = _registry(sharing_workload).get("q0")
        key = entry.signature_key()
        assert key == signature_key(entry.subplan_signature())
        assert len(key) == 8 and int(key, 16) >= 0

    def test_share_groups_partition_the_registry(self, sharing_workload):
        registry = _registry(sharing_workload)
        groups = registry.share_groups()
        members = [qid for group in groups.values() for qid in group]
        assert sorted(members) == sorted(registry.ids)
        assert any(len(group) > 1 for group in groups.values())

    def test_signature_partition_colocates_groups(self, sharing_workload):
        registry = _registry(sharing_workload)
        for group in registry.share_groups().values():
            shards = {
                signature_partition(registry.get(qid), i, 3)
                for i, qid in enumerate(group)
            }
            assert len(shards) == 1


# ------------------------------------------------------------------ overlays


class TestOverlaySharing:
    def _filtered_registry(self, tighten=False):
        """Two queries identical below the join: one SELECT *, one filtered
        and projected.  They must share one subtree."""
        base = generate_clique_workload(
            n_sources=2, rate=1.0, window_seconds=15, dmax=3, duration=80, seed=7
        )
        plain = ContinuousQuery.from_workload(base)
        threshold = 400 if tighten else 200
        filtered = ContinuousQuery(
            sources=plain.sources,
            window=plain.window,
            predicate=plain.predicate,
            selections=(
                SelectionPredicate(
                    (AttributeCompare(AttributeRef("A", "x1"), "<", threshold),)
                ),
            ),
            projection=(AttributeRef("A", "x1"), AttributeRef("B", "x1")),
        )
        registry = QueryRegistry()
        registry.register(plain, query_id="plain", strategy=STRATEGY_REF)
        registry.register(filtered, query_id="filtered", strategy=STRATEGY_REF)
        return base, registry

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_overlay_queries_share_one_subtree(self, policy):
        base, registry = self._filtered_registry()
        events = base.events()
        expected = {
            entry.query_id: run_workload(
                entry.build_plan(), events, base.window.length
            ).results.multiset()
            for entry in registry
        }
        assert expected["plain"] != expected["filtered"]  # overlays actually bite
        with ShardedEngine(
            registry, n_shards=1, scheduler=policy, share_subplans=True
        ) as engine:
            engine.run(events)
            assert engine.shards[0].shared_subplans_active == 1
            assert engine.shards[0].shared_subplan_hits == 1
            for query_id, multiset in expected.items():
                assert engine.results_for(query_id).multiset() == multiset

    def test_overlay_runtime_wiring(self):
        _base, registry = self._filtered_registry()
        with ShardedEngine(registry, n_shards=1, share_subplans=True) as engine:
            plain = engine.runtime_for("plain")
            filtered = engine.runtime_for("filtered")
            assert plain.shared is filtered.shared  # one hosted subtree
            assert plain.plan is None  # sink-fed straight off the tee
            assert filtered.plan is not None  # private Sel + Project overlay
            assert filtered.registered.has_overlay
            names = [op.name for op in filtered.plan.operators]
            assert names == ["Sel1", "Project"]


# ------------------------------------------------------------------ retirement


class TestRefcountedRetirement:
    def test_retire_keeps_subtree_until_last_subscriber(
        self, sharing_workload, sharing_events
    ):
        registry = _registry(sharing_workload)
        with ShardedEngine(registry, n_shards=1, share_subplans=True) as engine:
            shard = engine.shards[0]
            groups = [g for g in registry.share_groups().values() if len(g) > 1]
            group = groups[0]
            mid = len(sharing_events) // 2
            for event in sharing_events[:mid]:
                engine.submit(event)
            active_before = shard.shared_subplans_active
            # Retire all but the last member: the subtree must survive.
            for query_id in group[:-1]:
                engine.retire_query(query_id)
                assert shard.shared_subplans_active == active_before
            survivor = engine.runtime_for(group[-1]).shared
            assert survivor is not None
            assert survivor.tee.subscriber_ids == (group[-1],)
            # The survivor keeps producing correct results after the churn.
            for event in sharing_events[mid:]:
                engine.submit(event)
            entry = registry.get(group[-1])
            subscribed = [e for e in sharing_events if e.source in entry.sources]
            expected = run_workload(
                entry.build_plan(), subscribed, entry.query.window.length
            ).results.multiset()
            assert engine.results_for(group[-1]).multiset() == expected
            # Last subscriber out tears the subtree down.
            engine.retire_query(group[-1])
            assert shard.shared_subplans_active == active_before - 1

    def test_retire_everything_leaves_no_orphans(self, sharing_workload, sharing_events):
        registry = _registry(sharing_workload)
        with ShardedEngine(registry, n_shards=2, share_subplans=True) as engine:
            for event in sharing_events[:200]:
                engine.submit(event)
            for query_id in list(registry.ids):
                engine.retire_query(query_id)
            _assert_no_orphans(engine)

    def test_add_query_grafts_onto_live_subtree(self, sharing_workload, sharing_events):
        registry = _registry(sharing_workload)
        entries = list(registry)
        late = entries[-1]
        boot = QueryRegistry()
        for entry in entries[:-1]:
            boot.register(entry.query, query_id=entry.query_id, strategy=entry.strategy)
        with ShardedEngine(boot, n_shards=1, share_subplans=True) as engine:
            shard = engine.shards[0]
            hits_before = shard.shared_subplan_hits
            active_before = shard.shared_subplans_active
            runtime = engine.add_query(
                boot.register(late.query, query_id=late.query_id, strategy=late.strategy)
            )
            # q23 repeats an earlier signature: it grafts, never re-hosts.
            assert shard.shared_subplans_active == active_before
            assert shard.shared_subplan_hits == hits_before + 1
            assert runtime.shared is not None
            for event in sharing_events:
                engine.submit(event)
            expected = run_workload(
                late.build_plan(),
                [e for e in sharing_events if e.source in late.sources],
                late.query.window.length,
            ).results.multiset()
            assert engine.results_for(late.query_id).multiset() == expected


def _assert_no_orphans(engine: ShardedEngine) -> None:
    """After retiring every query, no queues, routes, scheduler orders,
    shared subtrees or router subscriptions may remain anywhere."""
    for shard in engine.shards:
        assert shard.runtimes == []
        assert shard.queue_count == 0
        assert shard.shared_subplans_active == 0
        assert shard.scheduler.ready_count() == 0
        assert not shard._routes
    assert engine.router.sources == []
    assert all(
        engine.router.subscriber_count(s) == 0 for s in ("A", "B", "C", "D")
    )


class TestRegisterRetireSweep:
    @settings(
        max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        data=st.data(),
        n_shards=st.integers(min_value=1, max_value=3),
        share=st.booleans(),
    )
    def test_arbitrary_interleavings_tear_down_cleanly(
        self, data, n_shards, share, sharing_workload, sharing_events
    ):
        registry = _registry(sharing_workload)
        entries = list(registry)
        boot = QueryRegistry()
        for entry in entries[:6]:
            boot.register(entry.query, query_id=entry.query_id, strategy=entry.strategy)
        with ShardedEngine(boot, n_shards=n_shards, share_subplans=share) as engine:
            live = list(boot.ids)
            pending = entries[6:12]
            cursor = 0
            steps = data.draw(
                st.lists(st.sampled_from(["add", "retire", "events"]), max_size=10)
            )
            for step in steps:
                if step == "add" and pending:
                    entry = pending.pop(0)
                    engine.add_query(
                        boot.register(
                            entry.query, query_id=entry.query_id, strategy=entry.strategy
                        )
                    )
                    live.append(entry.query_id)
                elif step == "retire" and live:
                    victim = data.draw(st.sampled_from(live))
                    live.remove(victim)
                    engine.retire_query(victim)
                elif step == "events":
                    for event in sharing_events[cursor : cursor + 40]:
                        engine.submit(event)
                    cursor += 40
            for query_id in list(live):
                engine.retire_query(query_id)
            _assert_no_orphans(engine)
