"""Indexed-vs-select scheduler equivalence, and the scheduler bugfix suite.

The indexed scheduler interface (deltas + ``pop_next``) must reproduce the
legacy sorted-``select`` path *bit-identically* — same result sequences,
same modelled costs — under every policy, on single-plan queued engines and
on (threaded) sharded multi-plan domains.  The deterministic matrix here is
the tier-1 smoke for that property; the hypothesis sweep (``slow``) explores
random plan shapes nightly.

Also covered: the three scheduler bugfixes of ISSUE 4 —

* a *suspension* boosts the handling (receiving side's downstream) operator,
  not the producer;
* a boost only decays when the boosted operator is actually served, so it
  cannot expire before the operator runs once, and among several boosted
  ready inputs the oldest head timestamp wins;
* the round-robin rotation keys on the stable registration ``order`` (not
  ``id(operator)``) and ``retire`` evicts records of retired plans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ExecutionMode, ReadyStrategy, SchedulerStrategy, run_workload
from repro.engine.engine import resolve_scheduler_strategy
from repro.multi import QueryRegistry, ShardedEngine, generate_multi_query_workload
from repro.operators.queues import InterOperatorQueue
from repro.plans.builder import (
    PLAN_LEFT_DEEP,
    STRATEGY_JIT,
    STRATEGY_REF,
    build_xjoin_plan,
)
from repro.plans.query import ContinuousQuery
from repro.scheduler import (
    JITAwareScheduler,
    ReadyInput,
    RoundRobinScheduler,
    build_scheduler,
)
from repro.streams.generators import generate_clique_workload
from repro.streams.tuples import AtomicTuple

ALL_POLICIES = ("fifo", "round_robin", "priority", "jit_aware")


# ------------------------------------------------------------------ helpers


class _Op:
    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"_Op({self.name})"


def _wire(scheduler, *inputs):
    """Install engine-style readiness listeners feeding ``scheduler``."""
    for item in inputs:
        def listener(queue, nonempty, item=item):
            if nonempty:
                scheduler.on_ready(item)
            else:
                scheduler.on_unready(item)
        item.queue.readiness_listener = listener


def _serve(scheduler):
    """One engine scheduling step against the indexed interface."""
    item = scheduler.pop_next()
    tup = item.queue.pop()
    if item.queue:
        scheduler.on_head_change(item)
    return item, tup


def _ready_input(context, name, ts, order, depth=0, operator=None):
    queue = InterOperatorQueue(f"q{order}", context)
    item = ReadyInput(
        operator=operator if operator is not None else _Op(name),
        port="left",
        queue=queue,
        depth=depth,
        order=order,
    )
    queue.push(AtomicTuple(name, ts, {"x": 1}))
    return item


def _queued_run(query, events, window_length, policy, scheduler_strategy):
    report = run_workload(
        build_xjoin_plan(query, shape=PLAN_LEFT_DEEP, strategy=STRATEGY_JIT),
        events,
        window_length,
        mode=ExecutionMode.QUEUED,
        scheduler=build_scheduler(policy),
        scheduler_strategy=scheduler_strategy,
    )
    return list(report.results.results), report.metrics.cpu_units


# ------------------------------------------------------------------ equivalence matrix


class TestIndexedSelectEquivalence:
    """The tier-1 smoke matrix: indexed == select, policy by policy."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_plan_identical_schedule(self, policy):
        workload = generate_clique_workload(
            n_sources=4, rate=0.5, window_seconds=20, dmax=2, duration=60, seed=0
        )
        query = ContinuousQuery.from_workload(workload)
        events = workload.events()
        runs = {
            strategy: _queued_run(
                query, events, workload.window.length, policy, strategy
            )
            for strategy in SchedulerStrategy.ALL
        }
        indexed_results, indexed_cpu = runs[SchedulerStrategy.INDEXED]
        select_results, select_cpu = runs[SchedulerStrategy.SELECT]
        assert indexed_results, f"{policy}: workload produced no results"
        # Identical result *sequences* and identical modelled costs — i.e.
        # the two drive modes made the same decision at every step.
        assert indexed_results == select_results
        assert indexed_cpu == select_cpu

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("n_shards,threaded", ((1, False), (2, False), (2, True)))
    def test_sharded_identical_sequences(self, policy, n_shards, threaded):
        workload = generate_multi_query_workload(
            n_queries=6, n_sources=4, rate=0.8, window_seconds=20, dmax=4,
            duration=80, seed=3,
        )
        events = workload.events()
        sequences = {}
        for strategy in SchedulerStrategy.ALL:
            registry = QueryRegistry()
            for index, query in enumerate(workload.queries()):
                registry.register(
                    query, strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF
                )
            with ShardedEngine(
                registry,
                n_shards=n_shards,
                scheduler=policy,
                scheduler_strategy=strategy,
                threaded=threaded,
            ) as engine:
                engine.run(events)
                sequences[strategy] = {
                    query_id: list(engine.results_for(query_id).results)
                    for query_id in registry.ids
                }
        assert sum(len(s) for s in sequences[SchedulerStrategy.INDEXED].values()) > 0
        assert sequences[SchedulerStrategy.INDEXED] == sequences[SchedulerStrategy.SELECT]

    def test_indexed_requires_incremental_ready_set(self):
        with pytest.raises(ValueError, match="rescan"):
            resolve_scheduler_strategy(
                SchedulerStrategy.INDEXED, ReadyStrategy.RESCAN
            )
        with pytest.raises(ValueError, match="unknown scheduler strategy"):
            resolve_scheduler_strategy("quantum", ReadyStrategy.INCREMENTAL)
        assert (
            resolve_scheduler_strategy(None, ReadyStrategy.INCREMENTAL)
            == SchedulerStrategy.INDEXED
        )
        assert (
            resolve_scheduler_strategy(None, ReadyStrategy.RESCAN)
            == SchedulerStrategy.SELECT
        )


@pytest.mark.slow
class TestEquivalenceSweep:
    """Randomized plan shapes: indexed must track select exactly."""

    @settings(max_examples=25, deadline=None)
    @given(
        n_sources=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
        rate=st.sampled_from((0.5, 1.0, 2.0)),
        dmax=st.integers(min_value=2, max_value=8),
        policy=st.sampled_from(ALL_POLICIES),
    )
    def test_random_workloads(self, n_sources, seed, rate, dmax, policy):
        workload = generate_clique_workload(
            n_sources=n_sources,
            rate=rate,
            window_seconds=25,
            dmax=dmax,
            duration=50,
            seed=seed,
        )
        query = ContinuousQuery.from_workload(workload)
        events = workload.events()
        indexed = _queued_run(
            query, events, workload.window.length, policy, SchedulerStrategy.INDEXED
        )
        select = _queued_run(
            query, events, workload.window.length, policy, SchedulerStrategy.SELECT
        )
        assert indexed == select


# ------------------------------------------------------------------ bugfix: boost direction


class TestSuspensionBoostDirection:
    """§III-B: a suspension boosts the handling operator, not the producer."""

    def _producer_consumer(self, context):
        # The producer's head is older, so plain FIFO (and the old
        # boost-the-producer bug) would pick the producer either way.
        producer_item = _ready_input(context, "P", ts=1.0, order=0)
        consumer_item = _ready_input(context, "C", ts=2.0, order=1)
        return producer_item, consumer_item

    def test_select_path_boosts_consumer_on_suspend(self, context):
        producer_item, consumer_item = self._producer_consumer(context)
        ready = (producer_item, consumer_item)
        scheduler = JITAwareScheduler(boost_steps=2)
        assert scheduler.select(ready) == 0  # FIFO: producer's head is older
        scheduler.notify_feedback(
            producer_item.operator, consumer_item.operator, "suspend"
        )
        assert scheduler.select(ready) == 1  # the handling consumer jumps ahead

    def test_select_path_boosts_producer_on_resume(self, context):
        producer_item, consumer_item = self._producer_consumer(context)
        # Flip the ages so FIFO would pick the consumer.
        ready = (
            _ready_input(context, "P", ts=5.0, order=0, operator=producer_item.operator),
            _ready_input(context, "C", ts=2.0, order=1, operator=consumer_item.operator),
        )
        scheduler = JITAwareScheduler(boost_steps=2)
        assert scheduler.select(ready) == 1
        scheduler.notify_feedback(ready[0].operator, ready[1].operator, "resume")
        assert scheduler.select(ready) == 0

    def test_indexed_path_boosts_consumer_on_suspend(self, context):
        scheduler = JITAwareScheduler(boost_steps=1)
        producer_item = _ready_input(context, "P", ts=1.0, order=0)
        consumer_item = _ready_input(context, "C", ts=2.0, order=1)
        _wire(scheduler, producer_item, consumer_item)
        scheduler.on_ready(producer_item)
        scheduler.on_ready(consumer_item)
        scheduler.notify_feedback(
            producer_item.operator, consumer_item.operator, "suspend"
        )
        chosen, _tup = _serve(scheduler)
        assert chosen is consumer_item


class TestBoostDecay:
    """A boost must survive until the boosted operator is actually served."""

    def test_boost_survives_while_not_servable(self, context):
        scheduler = JITAwareScheduler(boost_steps=2)
        producer, consumer = _Op("P"), _Op("C")
        other_a = _ready_input(context, "A", ts=1.0, order=1)
        other_b = _ready_input(context, "B", ts=2.0, order=2)
        ready_without_producer = (other_a, other_b)
        scheduler.notify_feedback(producer, consumer, "resume")
        # Far more scheduling decisions than boost_steps pass without the
        # producer having any ready input; the old per-select decay would
        # have expired the boost before the producer ever ran.
        for _ in range(10):
            assert scheduler.select(ready_without_producer) == 0
        producer_item = _ready_input(context, "P", ts=9.0, order=0, operator=producer)
        ready = (producer_item,) + ready_without_producer
        assert scheduler.select(ready) == 0  # still boosted: producer wins
        assert scheduler.select(ready) == 0  # second (and last) boosted serving
        assert scheduler.select(ready) == 1  # consumed: FIFO again

    def test_oldest_boosted_head_wins(self, context):
        # Two boosted operators ready at once: the oldest head runs first,
        # not the lowest ready-list index (the old behaviour).
        scheduler = JITAwareScheduler(boost_steps=4)
        op_young, op_old = _Op("young"), _Op("old")
        young = _ready_input(context, "Y", ts=3.0, order=0, operator=op_young)
        old = _ready_input(context, "O", ts=1.5, order=1, operator=op_old)
        scheduler.notify_feedback(op_young, _Op("x"), "resume")
        scheduler.notify_feedback(op_old, _Op("x"), "resume")
        assert scheduler.select((young, old)) == 1

    def test_indexed_boost_survives_until_servable(self, context):
        scheduler = JITAwareScheduler(boost_steps=1)
        producer = _Op("P")
        other = _ready_input(context, "A", ts=1.0, order=1)
        _wire(scheduler, other)
        scheduler.on_ready(other)
        scheduler.notify_feedback(producer, _Op("C"), "resume")
        for ts in (2.0, 3.0, 4.0):
            chosen, _tup = _serve(scheduler)
            assert chosen is other
            other.queue.push(AtomicTuple("A", ts, {"x": 1}))
        producer_item = _ready_input(context, "P", ts=9.0, order=0, operator=producer)
        _wire(scheduler, producer_item)
        scheduler.on_ready(producer_item)
        chosen, _tup = _serve(scheduler)
        assert chosen is producer_item  # boost outlived the idle stretch


# ------------------------------------------------------------------ bugfix: round robin


class TestRoundRobinIdentity:
    """The rotation keys on the stable order, and retire evicts records."""

    def test_same_operator_two_ports_rotate_independently(self, context):
        operator = _Op("shared")
        left = _ready_input(context, "L", ts=1.0, order=0, operator=operator)
        right = _ready_input(context, "R", ts=2.0, order=1, operator=operator)
        scheduler = RoundRobinScheduler()
        picks = [scheduler.select((left, right)) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_retire_evicts_history(self, context):
        scheduler = RoundRobinScheduler()
        a = _ready_input(context, "A", ts=1.0, order=0)
        b = _ready_input(context, "B", ts=2.0, order=1)
        for _ in range(3):
            scheduler.select((a, b))
        assert set(scheduler._history) == {0, 1}
        scheduler.retire((b,))
        assert set(scheduler._history) == {0}
        # A later plan's input reuses nothing: fresh order, fresh record,
        # and the rotation stays fair across the churn.
        c = _ready_input(context, "C", ts=3.0, order=2)
        served = [((a, c)[scheduler.select((a, c))]).operator.name for _ in range(4)]
        assert served.count("A") == served.count("C") == 2
        assert set(scheduler._history) == {0, 2}

    def test_indexed_rotation_matches_select(self, context):
        # Drive two fresh schedulers over the same arrival script through
        # both interfaces; the serve orders must coincide.
        def build(order_count):
            items = [
                _ready_input(context, f"S{i}", ts=float(i), order=i)
                for i in range(order_count)
            ]
            return items

        select_sched, indexed_sched = RoundRobinScheduler(), RoundRobinScheduler()
        select_items = build(3)
        indexed_items = build(3)
        _wire(indexed_sched, *indexed_items)
        for item in indexed_items:
            indexed_sched.on_ready(item)
        select_order, indexed_order = [], []
        for step in range(9):
            # Legacy path: every input stays continuously ready.
            chosen = select_items[select_sched.select(tuple(select_items))]
            select_order.append(chosen.order)
            chosen.queue.pop()
            chosen.queue.push(AtomicTuple("S", 10.0 + step, {"x": 1}))

            # Indexed path: the pop empties the queue (on_unready) and the
            # refill re-registers it (on_ready) — rotation state must survive.
            chosen, _tup = _serve(indexed_sched)
            indexed_order.append(chosen.order)
            chosen.queue.push(AtomicTuple("S", 10.0 + step, {"x": 1}))
        assert indexed_order == select_order


# ------------------------------------------------------------------ shard retirement


class TestShardPlanRetirement:
    def _workload(self):
        return generate_multi_query_workload(
            n_queries=2, n_sources=3, rate=0.8, window_seconds=20, dmax=4,
            duration=80, seed=7,
        )

    def test_retire_mid_run_preserves_survivor(self):
        workload = self._workload()
        events = workload.events()
        half = len(events) // 2

        registry = QueryRegistry()
        for query in workload.queries():
            registry.register(query)
        with ShardedEngine(registry, n_shards=1, scheduler="round_robin") as engine:
            shard = engine.shards[0]
            for event in events[:half]:
                engine.submit(event)
            retired = shard.retire_plan("q1")
            assert retired.query_id == "q1"
            partial_count = retired.collector.count
            for event in events[half:]:
                engine.submit(event)
            survivor = engine.results_for("q0").multiset()
            # The retired plan processed nothing after retirement.
            assert retired.collector.count == partial_count
            assert len(shard.runtimes) == 1
            # Scheduler history holds no retired identities (round robin
            # keys on orders; q1's orders are gone).
            live_orders = {t.order for t in shard.runtimes[0].templates}
            assert set(shard.scheduler._history) <= live_orders
            # The archived context no longer feeds the shard's scheduler.
            assert (
                shard.scheduler.notify_feedback
                not in retired.context.feedback_listeners
            )

        # The survivor matches a standalone run exactly.
        standalone_registry = QueryRegistry()
        q0 = standalone_registry.register(workload.query(0), query_id="q0")
        subscribed = [e for e in events if e.source in q0.sources]
        report = run_workload(q0.build_plan(), subscribed, q0.query.window.length)
        assert survivor == report.results.multiset()
        assert sum(survivor.values()) > 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("strategy", (None,) + SchedulerStrategy.ALL)
    def test_retire_under_every_policy_and_strategy(self, policy, strategy):
        """retire works for every policy whatever drive mode ran before it."""
        workload = self._workload()
        events = workload.events()
        registry = QueryRegistry()
        for query in workload.queries():
            registry.register(query)
        with ShardedEngine(
            registry, n_shards=1, scheduler=policy, scheduler_strategy=strategy
        ) as engine:
            for event in events[:10]:
                engine.submit(event)
            retired = engine.retire_query("q0")
            for event in events[10:30]:
                engine.submit(event)
            assert set(engine.report().queries) == {"q1"}
            assert retired.query_id == "q0"
        # Retiring before any event was processed must work too.
        registry2 = QueryRegistry()
        for query in workload.queries():
            registry2.register(query)
        with ShardedEngine(
            registry2, n_shards=1, scheduler=policy, scheduler_strategy=strategy
        ) as engine:
            engine.retire_query("q1")
            for event in events[:10]:
                engine.submit(event)

    @pytest.mark.parametrize("threaded", (False, True))
    def test_retire_query_through_engine(self, threaded):
        """ShardedEngine.retire_query parks the worker before unwiring."""
        workload = self._workload()
        events = workload.events()
        half = len(events) // 2
        registry = QueryRegistry()
        for query in workload.queries():
            registry.register(query)
        with ShardedEngine(registry, n_shards=1, threaded=threaded) as engine:
            for event in events[:half]:
                engine.submit(event)
            retired = engine.retire_query("q1")
            frozen_count = retired.collector.count
            for event in events[half:]:
                engine.submit(event)
            engine.flush()
            report = engine.report()
            assert retired.collector.count == frozen_count
            assert set(report.queries) == {"q0"}
            survivor = engine.results_for("q0").multiset()
        standalone_registry = QueryRegistry()
        q0 = standalone_registry.register(workload.query(0), query_id="q0")
        subscribed = [e for e in events if e.source in q0.sources]
        expected = run_workload(
            q0.build_plan(), subscribed, q0.query.window.length
        ).results.multiset()
        assert survivor == expected

    def test_retire_unknown_or_pending_rejected(self, tuple_factory):
        workload = self._workload()
        registry = QueryRegistry()
        for query in workload.queries():
            registry.register(query)
        with ShardedEngine(registry, n_shards=1) as engine:
            shard = engine.shards[0]
            with pytest.raises(KeyError, match="hosts no query"):
                shard.retire_plan("nope")
            queue = shard.runtimes[0].templates[0].queue
            queue.push(tuple_factory("A", 1.0, x=1))
            with pytest.raises(RuntimeError, match="queued tuples"):
                shard.retire_plan(shard.runtimes[0].query_id)
            queue.pop()  # restore quiescence so close() is clean
