"""Pickle-safety audit for everything the process backend ships over pipes.

``drain_mode="process"`` serializes four classes of payload between the
parent and its shard workers: routed event micro-batches (parent → worker),
hosted-plan commands carrying :class:`RegisteredQuery` entries (parent →
worker), per-query result tuples riding on acknowledgements (worker →
parent), and telemetry snapshots — :class:`MetricsReport`, cost counters,
scheduler stats — shipped at every flush barrier (worker → parent).  A type
that silently stops pickling (a lambda predicate, an unpicklable cached
attribute, a thread lock stored on a dataclass) would surface as a runtime
crash deep inside a worker; this audit pins the contract at the type level
so the break names itself here first.
"""

import pickle

import pytest

from repro.engine.results import result_key
from repro.multi import QueryRegistry, ShardedEngine
from repro.multi.workload import generate_multi_query_workload
from repro.plans.builder import STRATEGY_JIT, STRATEGY_REF
from repro.trace import TraceContext


@pytest.fixture(scope="module")
def workload():
    return generate_multi_query_workload(
        n_queries=8, n_sources=5, rate=0.8, window_seconds=20, dmax=4, duration=60, seed=3
    )


@pytest.fixture(scope="module")
def registry(workload):
    registry = QueryRegistry()
    for index, query in enumerate(workload.queries()):
        registry.register(
            query, strategy=STRATEGY_JIT if index % 2 else STRATEGY_REF
        )
    return registry


@pytest.fixture(scope="module")
def sync_run(registry, workload):
    """One synchronous run whose artifacts the round-trips below audit."""
    with ShardedEngine(registry, n_shards=2) as engine:
        report = engine.run_batch(workload.events())
        shards = engine.shards
        snapshots = [
            {
                "queue_count": shard.queue_count,
                "queue_depth": shard.queue_depth,
                "events_processed": shard.events_processed,
                "results_produced": shard.results_produced,
                "shared_subplans_active": shard.shared_subplans_active,
                "shared_subplan_hits": shard.shared_subplan_hits,
                "sources": shard.sources,
                "cost_counters": shard.cost.snapshot(),
                "scheduler_stats": dict(shard.scheduler.stats()),
                "metrics": shard.metrics(),
            }
            for shard in shards
        ]
    return report, snapshots


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_every_routed_event_roundtrips(workload):
    events = workload.events()
    assert events
    for event in events:
        clone = _roundtrip(event)
        assert clone == event
        assert (clone.source, clone.ts, clone.tuple.seq) == (
            event.source, event.ts, event.tuple.seq
        )
    # Micro-batches ship as lists, exactly as the router splits them.
    batch = events[:32]
    assert _roundtrip(batch) == batch


def test_every_registration_roundtrips(registry):
    for entry in registry:
        clone = _roundtrip(entry)
        assert clone.query_id == entry.query_id
        assert clone.strategy == entry.strategy
        assert clone.sources == entry.sources
        assert clone.describe() == entry.describe()
        # The canonical sub-plan signature must survive too — sharing on a
        # remote shard groups by it (including the cached copy a registry
        # lookup may already have materialized on the instance).
        assert clone.subplan_signature() == entry.subplan_signature()


def test_every_result_tuple_roundtrips(sync_run):
    report, _snapshots = sync_run
    audited = 0
    for qreport in report.queries.values():
        for tup in qreport.results.results:
            clone = _roundtrip(tup)
            assert result_key(clone) == result_key(tup)
            assert clone.ts == tup.ts
            audited += 1
    assert audited == report.total_results
    assert audited > 0


def test_telemetry_snapshots_roundtrip(sync_run):
    _report, snapshots = sync_run
    for snapshot in snapshots:
        clone = _roundtrip(snapshot)
        metrics, metrics_clone = snapshot["metrics"], clone["metrics"]
        assert metrics_clone.cpu_units == metrics.cpu_units
        assert metrics_clone.peak_memory_bytes == metrics.peak_memory_bytes
        assert dict(metrics_clone.counters) == dict(metrics.counters)
        assert metrics_clone.results_produced == metrics.results_produced
        for key in snapshot:
            if key == "metrics":
                continue
            assert clone[key] == snapshot[key]


def test_trace_context_roundtrips():
    for ctx in (TraceContext(7, True), TraceContext(123456, False)):
        clone = _roundtrip(ctx)
        assert clone.trace_id == ctx.trace_id
        assert clone.sampled == ctx.sampled
