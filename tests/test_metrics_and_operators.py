"""Unit tests for metrics, predicates, states, Bloom filters, queues and unary operators."""

from __future__ import annotations

import pytest

from repro.context import ExecutionContext
from repro.metrics import CostKind, CostModel, CostWeights, MemoryModel, MetricsReport
from repro.operators.aggregate import AggregateFunction, WindowAggregateOperator
from repro.operators.base import PORT_INPUT, PORT_LEFT, PORT_RIGHT
from repro.operators.bloom import BloomFilter, CountingBloomFilter
from repro.operators.join import BinaryJoinOperator, opposite_port
from repro.operators.predicates import (
    AttributeCompare,
    AttributeRef,
    EquiJoinCondition,
    JoinPredicate,
    SelectionPredicate,
    ThetaJoinCondition,
)
from repro.operators.projection import ProjectionOperator
from repro.operators.queues import InterOperatorQueue
from repro.operators.selection import SelectionOperator
from repro.operators.state import OperatorState
from repro.operators.static_join import StaticJoinOperator
from repro.streams.time import Window
from repro.streams.tuples import AtomicTuple, join_tuples

from helpers import make_tuple


# --------------------------------------------------------------------------- metrics


class TestCostModel:
    def test_charge_and_weighting(self):
        cost = CostModel(CostWeights(probe_step=2.0, insert=3.0))
        cost.charge(CostKind.PROBE_STEP, 5)
        cost.charge(CostKind.INSERT)
        assert cost.count(CostKind.PROBE_STEP) == 5
        assert cost.cpu_units == 5 * 2.0 + 3.0

    def test_unknown_kind_rejected(self):
        cost = CostModel()
        with pytest.raises(KeyError):
            cost.charge("not_a_kind")
        with pytest.raises(KeyError):
            CostWeights().weight("not_a_kind")

    def test_reset_and_snapshot(self):
        cost = CostModel()
        cost.charge(CostKind.HASH, 3)
        snap = cost.snapshot()
        assert snap[CostKind.HASH] == 3
        cost.reset()
        assert cost.cpu_units == 0

    def test_wall_clock(self):
        cost = CostModel()
        cost.start_wall_clock()
        cost.stop_wall_clock()
        assert cost.wall_seconds >= 0.0

    def test_weights_as_dict_covers_all_kinds(self):
        assert set(CostWeights().as_dict()) == set(CostKind.ALL)


class TestMemoryModel:
    def test_peak_tracking(self):
        mem = MemoryModel()
        mem.allocate(100, "state")
        mem.allocate(50, "queue")
        mem.release(100, "state")
        mem.allocate(20, "state")
        assert mem.current_bytes == 70
        assert mem.peak_bytes == 150
        assert mem.peak_by_category["state"] == 100

    def test_underflow_detected(self):
        mem = MemoryModel()
        mem.allocate(10)
        with pytest.raises(RuntimeError):
            mem.release(20)

    def test_negative_rejected(self):
        mem = MemoryModel()
        with pytest.raises(ValueError):
            mem.allocate(-1)

    def test_report_from_models(self):
        cost, mem = CostModel(), MemoryModel()
        cost.charge(CostKind.INSERT, 4)
        mem.allocate(2048)
        report = MetricsReport.from_models(cost, mem, results_produced=9)
        assert report.results_produced == 9
        assert report.peak_memory_kb == 2.0
        assert report.counters[CostKind.INSERT] == 4


# --------------------------------------------------------------------------- predicates


class TestPredicates:
    def test_equi_condition(self):
        cond = EquiJoinCondition(AttributeRef("A", "x"), AttributeRef("B", "x"))
        a = make_tuple("A", 1.0, x=5)
        b_match = make_tuple("B", 2.0, x=5)
        b_miss = make_tuple("B", 2.0, x=6)
        assert cond.evaluate(a, b_match)
        assert not cond.evaluate(a, b_miss)
        assert cond.is_equi
        assert cond.sources == frozenset({"A", "B"})
        assert cond.ref_for("A").attribute == "x"
        with pytest.raises(KeyError):
            cond.ref_for("C")

    def test_condition_rejects_same_source(self):
        with pytest.raises(ValueError):
            EquiJoinCondition(AttributeRef("A", "x"), AttributeRef("A", "y"))

    def test_theta_condition(self):
        cond = ThetaJoinCondition(AttributeRef("A", "x"), AttributeRef("B", "x"), "<")
        assert cond.evaluate(make_tuple("A", 0, x=1), make_tuple("B", 0, x=2))
        assert not cond.evaluate(make_tuple("A", 0, x=3), make_tuple("B", 0, x=2))
        assert not cond.is_equi
        with pytest.raises(ValueError):
            ThetaJoinCondition(AttributeRef("A", "x"), AttributeRef("B", "x"), "~")

    def test_join_predicate_between(self):
        pred = JoinPredicate.equi(
            [(("A", "x"), ("B", "x")), (("A", "y"), ("C", "y")), (("B", "z"), ("C", "z"))]
        )
        assert pred.sources == frozenset({"A", "B", "C"})
        between = pred.conditions_between({"A", "B"}, {"C"})
        assert len(between) == 2
        assert len(pred.conditions_involving("A")) == 2
        with pytest.raises(ValueError):
            pred.conditions_between({"A"}, {"A", "B"})

    def test_selection_predicate(self):
        pred = SelectionPredicate((AttributeCompare(AttributeRef("A", "x"), ">", 10),))
        assert pred.evaluate(make_tuple("A", 0, x=11))
        assert not pred.evaluate(make_tuple("A", 0, x=10))
        assert pred.sources == frozenset({"A"})
        with pytest.raises(ValueError):
            SelectionPredicate(())
        with pytest.raises(ValueError):
            AttributeCompare(AttributeRef("A", "x"), "??", 1)


# --------------------------------------------------------------------------- operator state


class TestOperatorState:
    def test_purge_probe_insert_cycle(self, context):
        state = OperatorState("S_A", context)
        for i in range(5):
            state.insert(make_tuple("A", float(i), seq=i, x=i), now=float(i))
        assert len(state) == 5
        removed = state.purge(horizon=2.0)
        assert [e.tuple.seq for e in removed] == [0, 1]
        assert len(state) == 3
        probed = [e.tuple.seq for e in state.probe()]
        assert probed == [2, 3, 4]

    def test_insertion_order_and_seq(self, context):
        state = OperatorState("S", context)
        e1 = state.insert(make_tuple("A", 5.0, seq=0, x=1))
        e2 = state.insert(make_tuple("A", 1.0, seq=1, x=2))  # older ts, later insert
        assert (e1.seq, e2.seq) == (0, 1)
        assert [e.seq for e in state.probe()] == [0, 1]

    def test_reinsert_with_original_seq(self, context):
        state = OperatorState("S", context)
        entry = state.insert(make_tuple("A", 1.0, x=1))
        state.remove_entry(entry)
        replay = state.insert(entry.tuple, seq=entry.seq)
        assert replay.seq == entry.seq
        fresh = state.insert(make_tuple("A", 2.0, seq=9, x=2))
        assert fresh.seq > replay.seq

    def test_purge_floor_retains_old_entries(self, context):
        state = OperatorState("S", context)
        state.insert(make_tuple("A", 0.0, x=1), now=0.0)
        state.purge_floor = 0.0
        removed = state.purge(horizon=100.0)
        assert removed == []
        state.purge_floor = None
        assert len(state.purge(horizon=100.0)) == 1

    def test_extract_moves_matching_entries(self, context):
        state = OperatorState("S", context)
        for i in range(4):
            state.insert(make_tuple("A", float(i), seq=i, x=i % 2))
        removed = state.extract(lambda t: t.get("x") == 0)
        assert len(removed) == 2
        assert all(e.removed for e in removed)
        assert len(state) == 2

    def test_memory_accounting(self, context):
        state = OperatorState("S", context)
        t = make_tuple("A", 0.0, x=1)
        state.insert(t)
        assert context.memory.current_bytes == t.size_bytes
        state.purge(horizon=10.0)
        assert context.memory.current_bytes == 0

    def test_hash_index_probe(self, context):
        refs = [AttributeRef("A", "x")]
        state = OperatorState("S", context, key_refs=refs)
        state.insert(make_tuple("A", 0.0, seq=0, x=7))
        state.insert(make_tuple("A", 0.0, seq=1, x=8))
        matches = state.probe_key((7,))
        assert [e.tuple.get("x") for e in matches] == [7]
        assert state.key_of(make_tuple("A", 0.0, x=9)) == (9,)

    def test_probe_key_requires_index(self, context):
        state = OperatorState("S", context)
        with pytest.raises(RuntimeError):
            state.probe_key((1,))

    def test_remove_entry_twice_fails(self, context):
        state = OperatorState("S", context)
        entry = state.insert(make_tuple("A", 0.0, x=1))
        state.remove_entry(entry)
        with pytest.raises(KeyError):
            state.remove_entry(entry)

    def test_compaction_keeps_live_entries(self, context):
        state = OperatorState("S", context)
        entries = [state.insert(make_tuple("A", float(i), seq=i, x=i)) for i in range(100)]
        state.purge(horizon=90.0)
        assert len(state) == 10
        assert [e.tuple.get("x") for e in state.probe()] == list(range(90, 100))
        del entries


# --------------------------------------------------------------------------- bloom filters


class TestBloomFilters:
    def test_no_false_negatives(self):
        bloom = BloomFilter(num_bits=256, num_hashes=3)
        values = list(range(50))
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)

    def test_definitely_absent_for_fresh_filter(self):
        bloom = BloomFilter(num_bits=64, num_hashes=2)
        assert bloom.definitely_absent("anything")
        bloom.add("anything")
        assert not bloom.definitely_absent("anything")

    def test_clear(self):
        bloom = BloomFilter(num_bits=64)
        bloom.add(1)
        bloom.clear()
        assert bloom.definitely_absent(1)
        assert len(bloom) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(num_hashes=0)

    def test_counting_filter_supports_removal(self):
        bloom = CountingBloomFilter(num_bits=128, num_hashes=3)
        bloom.add("a")
        bloom.add("a")
        bloom.remove("a")
        assert bloom.might_contain("a")
        bloom.remove("a")
        assert bloom.definitely_absent("a")

    def test_counting_filter_rejects_unknown_removal(self):
        bloom = CountingBloomFilter(num_bits=128)
        with pytest.raises(ValueError):
            bloom.remove("never added")

    def test_memory_model(self):
        assert BloomFilter(num_bits=1024).memory_bytes == 128
        assert CountingBloomFilter(num_bits=1024).memory_bytes == 512


# --------------------------------------------------------------------------- queues


class TestInterOperatorQueue:
    def test_fifo_order(self, context):
        q = InterOperatorQueue("q", context)
        t1, t2 = make_tuple("A", 1.0, x=1), make_tuple("A", 2.0, x=2)
        q.push(t1)
        q.push(t2)
        assert q.peek() is t1
        assert q.pop() is t1
        assert q.pop() is t2
        assert not q
        with pytest.raises(IndexError):
            q.pop()

    def test_capacity(self, context):
        q = InterOperatorQueue("q", context, capacity=1)
        q.push(make_tuple("A", 1.0, x=1))
        with pytest.raises(OverflowError):
            q.push(make_tuple("A", 2.0, x=2))
        with pytest.raises(ValueError):
            InterOperatorQueue("bad", context, capacity=0)

    def test_memory_accounting(self, context):
        q = InterOperatorQueue("q", context)
        t = make_tuple("A", 1.0, x=1)
        q.push(t)
        assert context.memory.by_category["queue"] == t.size_bytes
        q.drain()
        assert context.memory.by_category["queue"] == 0

    def test_stats(self, context):
        q = InterOperatorQueue("q", context)
        for i in range(3):
            q.push(make_tuple("A", float(i), seq=i, x=i))
        q.pop()
        assert q.total_pushed == 3
        assert q.max_length == 3
        assert len(q) == 2


# --------------------------------------------------------------------------- unary operators


def _attach(operator, context):
    operator.attach(context)
    collected = []
    operator.result_sink = collected.append
    return collected


class TestSelectionOperator:
    def test_filters_tuples(self, context):
        pred = SelectionPredicate((AttributeCompare(AttributeRef("A", "x"), ">", 5),))
        op = SelectionOperator("Sel", pred)
        out = _attach(op, context)
        context.clock.advance_to(1.0)
        op.process(make_tuple("A", 1.0, x=10), PORT_INPUT)
        op.process(make_tuple("A", 1.0, x=3), PORT_INPUT)
        assert len(out) == 1
        assert op.passed == 1 and op.rejected == 1

    def test_output_sources_default_to_predicate(self):
        pred = SelectionPredicate((AttributeCompare(AttributeRef("A", "x"), ">", 5),))
        assert SelectionOperator("Sel", pred).output_sources() == frozenset({"A"})


class TestProjectionOperator:
    def test_projects_columns(self, context):
        op = ProjectionOperator("P", [AttributeRef("A", "x"), AttributeRef("B", "y")])
        out = _attach(op, context)
        context.clock.advance_to(1.0)
        ab = join_tuples(make_tuple("A", 1.0, x=3), make_tuple("B", 1.0, y=4))
        op.process(ab, PORT_INPUT)
        assert len(out) == 1
        assert out[0].attrs == {"A_x": 3, "B_y": 4}
        assert out[0].ts == ab.ts

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ProjectionOperator("P", [])


class TestStaticJoinOperator:
    def _relation(self):
        return [AtomicTuple("R", 0.0, {"y": v}, seq=i) for i, v in enumerate([1, 2, 3])]

    def test_joins_against_relation(self, context):
        pred = JoinPredicate.equi([(("A", "y"), ("R", "y"))])
        op = StaticJoinOperator("SJ", self._relation(), pred, stream_sources={"A"})
        out = _attach(op, context)
        context.clock.advance_to(1.0)
        op.process(make_tuple("A", 1.0, y=2), PORT_INPUT)
        op.process(make_tuple("A", 1.0, y=9), PORT_INPUT)
        assert len(out) == 1
        assert op.matched_inputs == 1 and op.unmatched_inputs == 1

    def test_relation_validation(self):
        pred = JoinPredicate.equi([(("A", "y"), ("R", "y"))])
        with pytest.raises(ValueError):
            StaticJoinOperator("SJ", [], pred, stream_sources={"A"})
        mixed = [AtomicTuple("R", 0.0, {"y": 1}), AtomicTuple("Q", 0.0, {"y": 1})]
        with pytest.raises(ValueError):
            StaticJoinOperator("SJ", mixed, pred, stream_sources={"A"})


class TestAggregateOperator:
    def test_count_over_window(self, context):
        op = WindowAggregateOperator("agg", AggregateFunction.COUNT, group_ref=AttributeRef("A", "g"))
        out = _attach(op, context)
        for i, ts in enumerate([1.0, 2.0, 3.0]):
            context.clock.advance_to(ts)
            op.process(make_tuple("A", ts, seq=i, g="grp", v=i), PORT_INPUT)
        assert op.current_value("grp") == 3
        assert [t.attrs["value"] for t in out] == [1, 2, 3]

    def test_expiry_reduces_aggregate(self, context):
        op = WindowAggregateOperator("agg", AggregateFunction.SUM, value_ref=AttributeRef("A", "v"))
        _attach(op, context)
        context.clock.advance_to(1.0)
        op.process(make_tuple("A", 1.0, v=10), PORT_INPUT)
        context.clock.advance_to(70.0)  # window is 60s -> first tuple expired
        op.process(make_tuple("A", 70.0, seq=1, v=5), PORT_INPUT)
        assert op.current_value() == 5

    def test_avg_min_max(self, context):
        for function, expected in ((AggregateFunction.AVG, 2.0), (AggregateFunction.MIN, 1), (AggregateFunction.MAX, 3)):
            op = WindowAggregateOperator("agg", function, value_ref=AttributeRef("A", "v"))
            _attach(op, context)
            fresh = ExecutionContext(window=Window(60.0))
            op.attach(fresh)
            for i, v in enumerate([1, 2, 3]):
                fresh.clock.advance_to(float(i + 1))
                op.process(make_tuple("A", float(i + 1), seq=i, v=v), PORT_INPUT)
            assert op.current_value() == expected

    def test_invalid_function(self):
        with pytest.raises(ValueError):
            WindowAggregateOperator("agg", "median", value_ref=AttributeRef("A", "v"))
        with pytest.raises(ValueError):
            WindowAggregateOperator("agg", AggregateFunction.SUM)


# --------------------------------------------------------------------------- binary join (REF)


class TestBinaryJoin:
    def _join(self, context, use_hash_index=False):
        pred = JoinPredicate.equi([(("A", "x"), ("B", "x"))])
        op = BinaryJoinOperator("J", {"A"}, {"B"}, pred, use_hash_index=use_hash_index)
        out = _attach(op, context)
        return op, out

    def test_opposite_port(self):
        assert opposite_port(PORT_LEFT) == PORT_RIGHT
        assert opposite_port(PORT_RIGHT) == PORT_LEFT
        with pytest.raises(KeyError):
            opposite_port("nope")

    def test_basic_join(self, context):
        op, out = self._join(context)
        context.clock.advance_to(1.0)
        op.process(make_tuple("A", 1.0, x=5), PORT_LEFT)
        context.clock.advance_to(2.0)
        op.process(make_tuple("B", 2.0, x=5), PORT_RIGHT)
        context.clock.advance_to(3.0)
        op.process(make_tuple("B", 3.0, seq=1, x=6), PORT_RIGHT)
        assert len(out) == 1
        assert out[0].sources == ("A", "B")
        assert out[0].ts == 2.0

    def test_hash_index_same_results(self, context):
        op, out = self._join(context, use_hash_index=True)
        context.clock.advance_to(1.0)
        op.process(make_tuple("A", 1.0, x=5), PORT_LEFT)
        context.clock.advance_to(2.0)
        op.process(make_tuple("B", 2.0, x=5), PORT_RIGHT)
        assert len(out) == 1

    def test_window_expiry_prevents_join(self, context):
        op, out = self._join(context)
        context.clock.advance_to(0.0)
        op.process(make_tuple("A", 0.0, x=5), PORT_LEFT)
        context.clock.advance_to(100.0)  # beyond the 60s window
        op.process(make_tuple("B", 100.0, x=5), PORT_RIGHT)
        assert out == []
        assert op.state_sizes == (0, 1)  # expired A tuple was purged

    def test_input_validation(self):
        pred = JoinPredicate.equi([(("A", "x"), ("B", "x"))])
        with pytest.raises(ValueError):
            BinaryJoinOperator("J", {"A"}, {"A"}, pred)
        with pytest.raises(ValueError):
            BinaryJoinOperator("J", set(), {"B"}, pred)

    def test_sources_of_ports(self, context):
        op, _ = self._join(context)
        assert op.input_sources(PORT_LEFT) == frozenset({"A"})
        assert op.output_sources() == frozenset({"A", "B"})
        with pytest.raises(KeyError):
            op.input_sources("middle")
